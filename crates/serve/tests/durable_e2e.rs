//! End-to-end durability: a `spawn_durable` daemon journals a streamed
//! scenario, is restarted against the same directory, and must come back
//! with the same flow history, verdict and audit trail as before — and as
//! a durability-off daemon fed the identical stream.

use hawkeye_eval::{optimal_run_config, Verdict};
use hawkeye_serve::{
    replay_streaming, spawn, spawn_durable, DaemonHandle, Endpoint, FlowObservation, FsyncPolicy,
    ReplayOutcome, ServeClient, ServeConfig, StoreConfig, WalConfig,
};
use hawkeye_workloads::{build_scenario, ScenarioKind, ScenarioParams};
use std::path::{Path, PathBuf};

fn incast() -> hawkeye_workloads::Scenario {
    build_scenario(ScenarioKind::MicroBurstIncast, ScenarioParams::default())
}

fn tiered_cfg() -> ServeConfig {
    ServeConfig {
        store: StoreConfig {
            epoch_budget: 2,
            compact_budget: 8,
            compact_chunk: 4,
            ..StoreConfig::default()
        },
        shards: 2,
        ..ServeConfig::default()
    }
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hawkeye-durable-{tag}-{}", std::process::id()))
}

/// Stream the scenario into a daemon over a unix socket, take a Stats
/// barrier (flush ⟹ journaled on a durable daemon), and return the
/// outcome plus the daemon's view of the victim's flow history.
fn stream_into(
    sc: &hawkeye_workloads::Scenario,
    sock: &Path,
) -> (ReplayOutcome, Vec<FlowObservation>) {
    let client = ServeClient::connect_unix(sock).expect("connect");
    let cfg = optimal_run_config(1);
    let (outcome, mut client) = replay_streaming(sc, &cfg, client);
    assert_eq!(outcome.stream.errors, 0, "stream: {:?}", outcome.stream);
    client.stats().expect("stats barrier");
    let history = client.flow_history(sc.truth.victim).expect("history");
    (outcome, history)
}

fn query_history(sc: &hawkeye_workloads::Scenario, sock: &Path) -> Vec<FlowObservation> {
    let mut client = ServeClient::connect_unix(sock).expect("connect");
    client.flow_history(sc.truth.victim).expect("history")
}

/// Graceful restart: everything journaled must come back — flow history
/// (both tiers), the served verdict, and the audit trail with its seq.
#[test]
fn durable_daemon_state_survives_restart() {
    let sc = incast();
    let dir = tmp("restart");
    let _ = std::fs::remove_dir_all(&dir);
    let sock = tmp("restart.sock");

    // First incarnation: stream, diagnose, stop.
    let wal = WalConfig {
        fsync: FsyncPolicy::Never,
        ..WalConfig::new(&dir)
    };
    let handle = spawn_durable(
        sc.topo.clone(),
        tiered_cfg(),
        Endpoint::Unix(sock.clone()),
        Some(wal.clone()),
    )
    .expect("bind durable daemon");
    let rep = handle.recovery.expect("durable handle reports recovery");
    assert_eq!(rep.records_scanned, 0, "fresh dir: {rep:?}");
    let (outcome, history1) = stream_into(&sc, &sock);
    assert_eq!(outcome.verdict, Some(Verdict::Correct));
    let w = outcome.window.expect("victim detected");
    let mut client = ServeClient::connect_unix(&sock).expect("connect");
    let served1 = client
        .diagnose(sc.truth.victim, w.from, w.to, outcome.missing.clone())
        .expect("diagnosis");
    let explain1 = client.explain(None).expect("audit record");
    drop(client);
    let mut shut = ServeClient::connect_unix(&sock).expect("connect");
    shut.shutdown().expect("graceful shutdown");
    handle.wait();
    assert!(!sock.exists(), "graceful stop must remove the socket");

    // Second incarnation, same directory: recovered, not re-streamed.
    let handle = spawn_durable(
        sc.topo.clone(),
        tiered_cfg(),
        Endpoint::Unix(sock.clone()),
        Some(wal),
    )
    .expect("restart durable daemon");
    let rep = handle.recovery.expect("recovery report");
    assert!(rep.records_scanned > 0, "nothing recovered: {rep:?}");
    assert_eq!(rep.truncated_records, 0, "clean log truncated: {rep:?}");
    assert!(rep.verdicts_replayed > 0 || rep.checkpoint_restored);

    let history2 = query_history(&sc, &sock);
    assert_eq!(history2, history1, "flow history changed across restart");

    let mut client = ServeClient::connect_unix(&sock).expect("connect");
    let served2 = client
        .diagnose(sc.truth.victim, w.from, w.to, outcome.missing.clone())
        .expect("post-recovery diagnosis");
    assert!(
        outcome.parity_with(&served2),
        "verdict diverged after recovery:\n  before: {served1:?}\n  after:  {served2:?}"
    );
    // The audit trail recovered its ring *and* its counter: the recovered
    // record is served under its original seq, and new verdicts continue
    // the numbering instead of restarting at 0.
    let replayed = client
        .explain(Some(explain1.seq))
        .expect("recovered record");
    assert_eq!(replayed, explain1);
    let explain2 = client.explain(None).expect("latest");
    assert!(explain2.seq > explain1.seq, "seq restarted: {explain2:?}");

    client.shutdown().expect("shutdown");
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The durable path (with checkpoints forced via tiny segments) must
/// produce exactly the state a durability-off daemon builds from the same
/// stream — recovery included.
#[test]
fn recovered_state_matches_durability_off() {
    let sc = incast();

    // Reference: durability off.
    let sock_ref = tmp("off.sock");
    let handle = spawn(
        sc.topo.clone(),
        tiered_cfg(),
        Endpoint::Unix(sock_ref.clone()),
    )
    .expect("bind reference daemon");
    assert!(handle.recovery.is_none(), "off daemon has no recovery");
    let (_, history_ref) = stream_into(&sc, &sock_ref);
    shutdown_daemon(handle, &sock_ref);

    // Durable with small segments: rotation and the checkpoint protocol
    // both fire mid-stream.
    let dir = tmp("ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    let sock = tmp("ckpt.sock");
    let wal = WalConfig {
        fsync: FsyncPolicy::Never,
        segment_bytes: 1024,
        retire_segments: 2,
        ..WalConfig::new(&dir)
    };
    let handle = spawn_durable(
        sc.topo.clone(),
        tiered_cfg(),
        Endpoint::Unix(sock.clone()),
        Some(wal.clone()),
    )
    .expect("bind durable daemon");
    let (_, history_durable) = stream_into(&sc, &sock);
    assert_eq!(
        history_durable, history_ref,
        "durable-on changed live query results"
    );
    shutdown_daemon(handle, &sock);

    // Restart and compare again: checkpoint restore + tail replay.
    let handle = spawn_durable(
        sc.topo.clone(),
        tiered_cfg(),
        Endpoint::Unix(sock.clone()),
        Some(wal),
    )
    .expect("restart durable daemon");
    let rep = handle.recovery.expect("recovery report");
    assert!(
        rep.checkpoint_restored,
        "tiny segments must have checkpointed: {rep:?}"
    );
    let history_rec = query_history(&sc, &sock);
    assert_eq!(
        history_rec, history_ref,
        "recovered state diverged from the uninterrupted reference"
    );
    shutdown_daemon(handle, &sock);
    let _ = std::fs::remove_dir_all(&dir);
}

fn shutdown_daemon(handle: DaemonHandle, sock: &Path) {
    let mut c = ServeClient::connect_unix(sock).expect("connect for shutdown");
    c.shutdown().expect("shutdown");
    handle.wait();
}
