//! Acceptance criterion: incremental-vs-rebuild wait-for-graph
//! equivalence on REAL simulator telemetry, across at least three
//! scenarios and three seeds. Each scenario runs under the streaming
//! hook; every collection epoch the controller would upload is fed to the
//! [`IncrementalProvenance`] engine one snapshot at a time, and at
//! checkpoints along the stream (plus the end) the engine's graph must be
//! identical — node for node, edge for edge — to a from-scratch
//! `AggTelemetry::build` + `build_graph` over the same snapshot prefix.

use hawkeye_core::{
    build_graph, AggTelemetry, IncrementalProvenance, ProvenanceGraph, ReplayConfig,
};
use hawkeye_eval::optimal_run_config;
use hawkeye_serve::{replay_streaming, VecSink};
use hawkeye_telemetry::TelemetrySnapshot;
use hawkeye_workloads::{build_scenario, Scenario, ScenarioKind, ScenarioParams};

fn assert_graphs_equal(
    kind: ScenarioKind,
    seed: u64,
    at: usize,
    g: &ProvenanceGraph,
    b: &ProvenanceGraph,
) {
    let ctx = format!("{kind:?} seed {seed} after {at} snapshots");
    assert_eq!(g.ports, b.ports, "port nodes diverged: {ctx}");
    assert_eq!(g.flows, b.flows, "flow nodes diverged: {ctx}");
    assert_eq!(g.port_edges, b.port_edges, "port edges diverged: {ctx}");
    assert_eq!(
        g.flow_port_edges, b.flow_port_edges,
        "flow→port edges diverged: {ctx}"
    );
    assert_eq!(
        g.port_flow_edges, b.port_flow_edges,
        "port→flow edges diverged: {ctx}"
    );
}

fn stream_scenario(kind: ScenarioKind, seed: u64) -> (Scenario, Vec<TelemetrySnapshot>) {
    let sc = build_scenario(
        kind,
        ScenarioParams {
            seed,
            ..ScenarioParams::default()
        },
    );
    let cfg = optimal_run_config(seed);
    let (_, sink) = replay_streaming(&sc, &cfg, VecSink::default());
    (sc, sink.snaps)
}

fn check_kind_seed(kind: ScenarioKind, seed: u64) {
    let (sc, snaps) = stream_scenario(kind, seed);
    assert!(
        !snaps.is_empty(),
        "{kind:?} seed {seed} streamed no telemetry — scenario broken"
    );

    let mut eng = IncrementalProvenance::new(ReplayConfig::default(), 1024);
    let stride = (snaps.len() / 4).max(1);
    for (i, s) in snaps.iter().enumerate() {
        eng.apply(s);
        let done = i + 1;
        if done % stride == 0 || done == snaps.len() {
            let batch = build_graph(
                &AggTelemetry::build(&snaps[..done], eng.window()),
                &sc.topo,
                ReplayConfig::default(),
            );
            assert_graphs_equal(kind, seed, done, eng.graph(&sc.topo), &batch);
        }
    }
    // The engine actually reused work: at least one refresh after the
    // first must have kept fragments for untouched switches.
    let st = eng.stats();
    assert!(
        st.snapshots_applied as usize == snaps.len(),
        "engine saw every snapshot"
    );
}

#[test]
fn incast_incremental_equals_rebuild_across_seeds() {
    for seed in 1..=3 {
        check_kind_seed(ScenarioKind::MicroBurstIncast, seed);
    }
}

#[test]
fn pfc_storm_incremental_equals_rebuild_across_seeds() {
    for seed in 1..=3 {
        check_kind_seed(ScenarioKind::PfcStorm, seed);
    }
}

#[test]
fn contention_incremental_equals_rebuild_across_seeds() {
    for seed in 1..=3 {
        check_kind_seed(ScenarioKind::NormalContention, seed);
    }
}
