//! Regression test for the `Stats` ↔ ingest lock-order inversion.
//!
//! The `Stats` handler used to acquire metrics → engine → store while the
//! shard workers acquired store → engine → metrics — a classic ABBA
//! deadlock that only needed one stats poll to land mid-ingest. The fix
//! pins the canonical order store → engine → metrics everywhere (see the
//! `Shared` docs in `server.rs`). This test hammers `Stats` and
//! `FlowHistory` from several connections while another streams ingest,
//! under a watchdog that turns a deadlock into a test failure instead of
//! a hang.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use hawkeye_serve::{spawn, Endpoint, ServeClient, ServeConfig, StoreConfig};
use hawkeye_sim::{FlowKey, Nanos, NodeId};
use hawkeye_telemetry::{EpochSnapshot, FlowRecord, PortRecord, TelemetrySnapshot};
use hawkeye_workloads::{build_scenario, ScenarioKind, ScenarioParams};

const EPOCH_LEN: u64 = 1 << 17;
const STEPS: u64 = 24;
const STATS_THREADS: usize = 3;
const WATCHDOG: Duration = Duration::from_secs(120);

static DONE: AtomicBool = AtomicBool::new(false);

fn victim() -> FlowKey {
    FlowKey::roce(NodeId(0), NodeId(1), 7)
}

fn synth_snap(sw: NodeId, nports: usize, step: u64) -> TelemetrySnapshot {
    let out_port = (step % nports.max(1) as u64) as u8;
    let epoch = EpochSnapshot {
        slot: (step % 4) as usize,
        id: step as u8,
        start: Nanos(step * EPOCH_LEN),
        len: Nanos(EPOCH_LEN),
        flows: vec![(
            victim(),
            FlowRecord {
                pkt_count: 40 + (step % 7) as u32,
                paused_count: 2,
                qdepth_sum: 700,
                out_port,
            },
        )],
        ports: vec![(
            out_port,
            PortRecord {
                pkt_count: 55,
                paused_count: 3,
                qdepth_sum: 1100,
            },
        )],
        meter: if nports >= 2 {
            vec![(0, 1, 2048)]
        } else {
            vec![]
        },
    };
    TelemetrySnapshot {
        switch: sw,
        taken_at: Nanos((step + 1) * EPOCH_LEN),
        nports,
        max_flows: 32,
        epochs: vec![epoch],
        evicted: vec![],
    }
}

/// `Stats` polled concurrently with sustained ingest (and `FlowHistory`
/// sprinkled in) completes without deadlocking, and the final counters
/// account for every snapshot sent.
#[test]
fn stats_under_concurrent_ingest_does_not_deadlock() {
    let (done_tx, done_rx) = mpsc::channel();
    let body = thread::spawn(move || {
        run_hammer();
        let _ = done_tx.send(());
    });
    match done_rx.recv_timeout(WATCHDOG) {
        Ok(()) => body.join().expect("hammer body panicked"),
        Err(_) => panic!(
            "lock-order hammer did not finish within {WATCHDOG:?} — \
             probable store/engine/metrics deadlock"
        ),
    }
}

fn run_hammer() {
    let sc = build_scenario(ScenarioKind::MicroBurstIncast, ScenarioParams::default());
    let switches: Vec<NodeId> = sc.topo.switches().collect();
    let cfg = ServeConfig {
        store: StoreConfig {
            epoch_budget: 4,
            compact_budget: 8,
            compact_chunk: 4,
            ..StoreConfig::default()
        },
        ..ServeConfig::default()
    };
    let handle =
        spawn(sc.topo.clone(), cfg, Endpoint::Tcp("127.0.0.1:0".into())).expect("bind daemon");
    let addr = handle
        .local_addr
        .expect("tcp daemon has an address")
        .to_string();

    // Stats hammers: poll as fast as the round trips allow until the
    // ingester finishes. Each poll walks store → engine → metrics; with
    // the old metrics-first order this reliably wedged against a shard
    // worker holding its store.
    let mut hammers = Vec::new();
    for i in 0..STATS_THREADS {
        let addr = addr.clone();
        hammers.push(thread::spawn(move || {
            let mut client = ServeClient::connect_tcp(&addr).expect("connect stats");
            let mut polls = 0u64;
            while !DONE.load(Ordering::Relaxed) {
                let stats = client.stats().expect("stats");
                assert!(stats.as_object().is_some(), "stats must be an object");
                if i == 0 {
                    // One hammer also exercises the cross-shard gather
                    // path, which takes the stores one at a time.
                    client.flow_history(victim()).expect("flow history");
                }
                polls += 1;
            }
            polls
        }));
    }

    // Ingester: streams STEPS epochs per switch, interleaved across
    // switches so every shard worker stays busy the whole run.
    let mut client = ServeClient::connect_tcp(&addr).expect("connect ingest");
    let mut sent = 0u64;
    for step in 0..STEPS {
        for &sw in &switches {
            let nports = sc.topo.ports(sw).len();
            if client
                .ingest(&synth_snap(sw, nports, step))
                .expect("ingest")
            {
                sent += 1;
            }
        }
    }
    DONE.store(true, Ordering::Relaxed);

    let polls: u64 = hammers
        .into_iter()
        .map(|h| h.join().expect("stats hammer panicked"))
        .sum();
    assert!(polls > 0, "stats hammers never completed a poll");
    // Bounded queues may shed under hammer-induced contention; what must
    // hold is that everything *accepted* is accounted for below.
    assert!(sent > 0, "every snapshot was shed");

    // Post-quiesce: the counters reconcile with what was sent.
    client.flow_history(victim()).expect("flush barrier");
    let stats = client.stats().expect("final stats");
    let ingested = stats
        .get("epochs_ingested")
        .and_then(|v| v.as_u64())
        .expect("epochs_ingested");
    assert_eq!(ingested, sent, "ingested != sent after quiesce: {stats:?}");

    client.shutdown().expect("shutdown");
    handle.wait();
}
