//! Serve-plane observability, end to end over a real socket: after a
//! replayed scenario, the `Metrics` wire op returns per-op latency
//! histograms with nonzero counts plus the flight ring, and the `Explain`
//! op round-trips the Diagnose verdict's audit record — the "explain the
//! answer after the fact" acceptance path.

use hawkeye_eval::{optimal_run_config, Verdict};
use hawkeye_obs::names;
use hawkeye_serve::{spawn, Endpoint, ServeClient, ServeConfig};
use hawkeye_workloads::{build_scenario, ScenarioKind, ScenarioParams};

fn incast() -> hawkeye_workloads::Scenario {
    build_scenario(ScenarioKind::MicroBurstIncast, ScenarioParams::default())
}

#[test]
fn metrics_and_explain_round_trip_after_replay() {
    let sc = incast();
    let cfg = optimal_run_config(1);
    let handle = spawn(
        sc.topo.clone(),
        ServeConfig::default(),
        Endpoint::Tcp("127.0.0.1:0".into()),
    )
    .expect("bind daemon");
    let addr = handle.local_addr.expect("tcp daemon has an address");
    let client = ServeClient::connect_tcp(&addr.to_string()).expect("connect");

    let (outcome, mut client) = hawkeye_serve::replay_streaming(&sc, &cfg, client);
    assert!(outcome.stream.pushed > 0, "no epochs streamed");
    assert_eq!(outcome.verdict, Some(Verdict::Correct));
    let w = outcome.window.expect("victim was detected");
    let served = client
        .diagnose(sc.truth.victim, w.from, w.to, outcome.missing.clone())
        .expect("served diagnosis");

    // --- Metrics op: latency histograms populated by the replay itself.
    let (snap, flight) = client.metrics().expect("metrics op");
    let ingest = snap
        .histogram(names::OP_INGEST_NS)
        .expect("ingest latency histogram registered");
    assert_eq!(
        ingest.count, outcome.stream.pushed,
        "one ingest latency sample per streamed snapshot"
    );
    let diag = snap
        .histogram(names::OP_DIAGNOSE_NS)
        .expect("diagnose latency histogram registered");
    assert_eq!(diag.count, 1);
    assert!(diag.percentile(0.99).unwrap() > 0, "diagnose took >0 ns");
    assert!(
        diag.percentile(0.50) <= diag.percentile(0.99),
        "percentiles must be monotone"
    );
    // The seeded well-known counters are present even at zero.
    assert!(snap.counter_total(names::EPOCHS_INGESTED) > 0);
    assert_eq!(snap.counter_total(names::INGEST_SHED), 0);
    // Stage split: the ingest path attributed wall-clock somewhere.
    assert!(
        snap.counter_total(names::STAGE_APPEND_NS) > 0,
        "append stage timing missing: {snap:?}"
    );
    assert!(snap.counter_total(names::STAGE_ENGINE_APPLY_NS) > 0);
    // Fault-free replay: flight ring holds no warnings.
    let events = flight.as_array().expect("flight dump is an array");
    assert!(
        events
            .iter()
            .all(|e| e.get("kind").and_then(|k| k.as_str()) != Some("warning")),
        "fault-free replay produced warnings: {events:?}"
    );

    // --- Explain op: the verdict's provenance survives the round trip.
    let rec = client.explain(None).expect("explain latest");
    assert_eq!(rec.anomaly, format!("{:?}", served.anomaly));
    assert_eq!(rec.signature_row, "microburst_incast");
    assert_eq!(rec.confidence, "complete");
    assert_eq!(rec.window_from_ns, w.from.0);
    assert_eq!(rec.window_to_ns, w.to.0);
    assert!(
        rec.contributing_epochs > 0 && !rec.contributing_switches.is_empty(),
        "verdict must name its evidence: {rec:?}"
    );
    assert!(
        rec.stage_collect_ns > 0 && rec.stage_graph_ns > 0,
        "stage timings must be wall-clock, not zero: {rec:?}"
    );
    // By-seq lookup returns the identical record.
    let by_seq = client.explain(Some(rec.seq)).expect("explain by seq");
    assert_eq!(by_seq, rec);
    // A seq that was never journaled is a remote error, not a hang.
    assert!(client.explain(Some(rec.seq + 1000)).is_err());

    client.shutdown().expect("shutdown");
    handle.wait();
}

/// With observability disabled the daemon still serves (bare hot path):
/// Metrics answers with empty histograms and Explain reports no verdicts.
#[test]
fn disabled_obs_serves_without_journaling() {
    let sc = incast();
    let cfg = optimal_run_config(1);
    let handle = spawn(
        sc.topo.clone(),
        ServeConfig {
            obs: false,
            ..ServeConfig::default()
        },
        Endpoint::Tcp("127.0.0.1:0".into()),
    )
    .expect("bind daemon");
    let addr = handle.local_addr.expect("tcp daemon has an address");
    let client = ServeClient::connect_tcp(&addr.to_string()).expect("connect");

    let (outcome, mut client) = hawkeye_serve::replay_streaming(&sc, &cfg, client);
    let w = outcome.window.expect("victim was detected");
    client
        .diagnose(sc.truth.victim, w.from, w.to, outcome.missing.clone())
        .expect("served diagnosis");

    let (snap, flight) = client.metrics().expect("metrics op still answers");
    assert!(
        snap.histogram(names::OP_DIAGNOSE_NS).is_none(),
        "disabled obs must not record op latency"
    );
    assert_eq!(snap.counter_total(names::STAGE_ENGINE_APPLY_NS), 0);
    // Ingest accounting is part of the service contract, not optional obs.
    assert!(snap.counter_total(names::EPOCHS_INGESTED) > 0);
    assert_eq!(flight.as_array().map(|a| a.len()), Some(0));
    assert!(client.explain(None).is_err(), "no verdict journaled");

    client.shutdown().expect("shutdown");
    handle.wait();
}
