//! Long-running-serve retention regression tests.
//!
//! The headline bug this guards against: shard workers used to call
//! [`IncrementalProvenance::apply`] on every snapshot but never
//! `retire_before`, so the engine's rings, wait-for graph and fragment
//! caches grew without bound while the store evicted underneath them. Now
//! every ingest publishes the store's retention horizon and retires the
//! engine behind the fleet minimum; these tests stream many multiples of
//! the ring budget through both paths and assert every retention counter
//! stays bounded.

use hawkeye_core::{IncrementalProvenance, ReplayConfig};
use hawkeye_serve::{
    spawn, Endpoint, Fidelity, ServeClient, ServeConfig, StoreConfig, TelemetryStore,
};
use hawkeye_sim::{FlowKey, Nanos, NodeId};
use hawkeye_telemetry::{EpochSnapshot, FlowRecord, PortRecord, TelemetrySnapshot};
use hawkeye_workloads::{build_scenario, ScenarioKind, ScenarioParams};

const EPOCH_LEN: u64 = 1 << 17;
const BUDGET: usize = 4;
const ROUNDS: u64 = 12;

fn victim() -> FlowKey {
    FlowKey::roce(NodeId(0), NodeId(1), 7)
}

/// One synthetic collection upload: a single epoch at `step`, with ring
/// keys that never collide inside a test run (slot cycles mod 4, the
/// 8-bit id wraps only past step 255) and ports that exist on `sw`.
fn synth_snap(sw: NodeId, nports: usize, step: u64) -> TelemetrySnapshot {
    let out_port = (step % nports.max(1) as u64) as u8;
    let epoch = EpochSnapshot {
        slot: (step % 4) as usize,
        id: step as u8,
        start: Nanos(step * EPOCH_LEN),
        len: Nanos(EPOCH_LEN),
        flows: vec![(
            victim(),
            FlowRecord {
                pkt_count: 50 + (step % 13) as u32,
                paused_count: 3,
                qdepth_sum: 900,
                out_port,
            },
        )],
        ports: vec![(
            out_port,
            PortRecord {
                pkt_count: 60,
                paused_count: 4,
                qdepth_sum: 1200,
            },
        )],
        meter: if nports >= 2 {
            vec![(0, 1, 4096)]
        } else {
            vec![]
        },
    };
    TelemetrySnapshot {
        switch: sw,
        taken_at: Nanos((step + 1) * EPOCH_LEN),
        nports,
        max_flows: 32,
        epochs: vec![epoch],
        evicted: vec![],
    }
}

fn stat(stats: &serde::Value, key: &str) -> u64 {
    stats
        .as_object()
        .expect("stats is an object")
        .iter()
        .find(|(n, _)| n == key)
        .and_then(|(_, v)| v.as_u64())
        .unwrap_or_else(|| panic!("stats missing {key}: {stats:?}"))
}

/// Flow-history request doubles as a flush barrier, so the following
/// Stats read sees everything ingested so far.
fn barrier_stats(client: &mut ServeClient) -> serde::Value {
    client.flow_history(victim()).expect("flow history");
    client.stats().expect("stats")
}

/// A live daemon replaying ≥ 10x the ring budget of epochs holds bounded
/// memory in *both* retention domains: the store's rings stay at budget
/// (aged epochs compact instead of accumulating) and the engine retires
/// behind the published horizon, its nodes and fragments never growing
/// past an early-round baseline.
#[test]
fn daemon_replay_rounds_stay_bounded() {
    let sc = build_scenario(ScenarioKind::MicroBurstIncast, ScenarioParams::default());
    let switches: Vec<NodeId> = sc.topo.switches().collect();
    assert!(!switches.is_empty());
    let cfg = ServeConfig {
        store: StoreConfig {
            epoch_budget: BUDGET,
            compact_budget: 8,
            compact_chunk: BUDGET,
            ..StoreConfig::default()
        },
        ..ServeConfig::default()
    };
    let handle =
        spawn(sc.topo.clone(), cfg, Endpoint::Tcp("127.0.0.1:0".into())).expect("bind daemon");
    let addr = handle.local_addr.expect("tcp daemon has an address");
    let mut client = ServeClient::connect_tcp(&addr.to_string()).expect("connect");

    let per_round = BUDGET as u64;
    let mut mid = None;
    for round in 0..ROUNDS {
        for &sw in &switches {
            let nports = sc.topo.ports(sw).len();
            for i in 0..per_round {
                let step = round * per_round + i;
                assert!(
                    client
                        .ingest(&synth_snap(sw, nports, step))
                        .expect("ingest"),
                    "snapshot shed at round {round}"
                );
            }
        }
        if round == 2 {
            mid = Some(barrier_stats(&mut client));
        }
    }
    let end = barrier_stats(&mut client);
    let mid = mid.expect("mid-run stats captured");

    // Store: raw rings at budget, the overflow compacted, horizon moving.
    let switches_seen = stat(&end, "store_switches");
    assert_eq!(switches_seen, switches.len() as u64);
    assert!(
        stat(&end, "store_epochs_held") <= BUDGET as u64 * switches_seen,
        "store rings over budget: {end:?}"
    );
    assert!(stat(&end, "store_epochs_compacted_held") > 0, "{end:?}");
    assert!(stat(&end, "store_retention_horizon") > 0, "{end:?}");
    assert_eq!(
        stat(&end, "epochs_ingested"),
        ROUNDS * per_round * switches.len() as u64
    );

    // Engine: horizon-driven retirement fired and state is bounded — no
    // growth from round 3 to round 12 despite 4x more epochs ingested.
    // The engine's own ring backstop sits at 2x the store budget, so any
    // retirement under that line is the published horizon doing the work.
    assert!(stat(&end, "engine_epochs_retired") > 0, "{end:?}");
    assert!(stat(&end, "engine_epochs_retired_total") > 0, "{end:?}");
    assert!(stat(&end, "engine_horizon") > 0, "{end:?}");
    assert!(
        stat(&end, "engine_epochs_held") <= 2 * BUDGET as u64 * switches.len() as u64,
        "engine rings over budget: {end:?}"
    );
    assert!(stat(&mid, "engine_nodes") > 0, "{mid:?}");
    assert!(
        stat(&end, "engine_nodes") <= stat(&mid, "engine_nodes"),
        "engine nodes grew: mid {mid:?} end {end:?}"
    );
    assert!(
        stat(&end, "engine_fragments") <= stat(&mid, "engine_fragments"),
        "engine fragments grew: mid {mid:?} end {end:?}"
    );

    // The victim's history spans both tiers over the wire.
    let rows = client.flow_history(victim()).expect("flow history");
    assert!(rows.iter().any(|r| r.fidelity == Fidelity::Raw));
    assert!(rows.iter().any(|r| r.fidelity == Fidelity::Compacted));
    assert!(rows.windows(2).all(|w| w[0].from <= w[1].from), "unsorted");

    client.shutdown().expect("shutdown");
    handle.wait();
}

/// The store-eviction → `retire_before` contract, driven directly (no
/// daemon): the engine's rings, fragment cache and graph nodes all stay at
/// their early-round sizes across 12 rounds of ingest.
#[test]
fn engine_retirement_tracks_store_horizon() {
    let sc = build_scenario(ScenarioKind::MicroBurstIncast, ScenarioParams::default());
    let switches: Vec<NodeId> = sc.topo.switches().collect();
    let mut store = TelemetryStore::new(StoreConfig {
        epoch_budget: BUDGET,
        compact_budget: 8,
        compact_chunk: BUDGET,
        ..StoreConfig::default()
    });
    let mut engine = IncrementalProvenance::new(ReplayConfig::default(), 2 * BUDGET);

    let mut baseline = None;
    for round in 0..ROUNDS {
        for &sw in &switches {
            let nports = sc.topo.ports(sw).len();
            for i in 0..BUDGET as u64 {
                let step = round * BUDGET as u64 + i;
                let snap = synth_snap(sw, nports, step);
                store.append(&snap);
                engine.apply(&snap);
                let horizon = store.retention_horizon().unwrap_or(Nanos::ZERO);
                engine.retire_before(horizon);
            }
        }
        engine.refresh(&sc.topo);
        let m = (
            engine.epochs_held(),
            engine.fragments_held(),
            engine.node_count(),
        );
        if round == 2 {
            baseline = Some(m);
        } else if round > 2 {
            let b = baseline.expect("baseline from round 2");
            assert!(
                m.0 <= b.0 && m.1 <= b.1 && m.2 <= b.2,
                "engine state grew past round-2 baseline: {m:?} vs {b:?} at round {round}"
            );
        }
    }
    assert!(engine.stats().epochs_retired > 0, "retirement never fired");
    assert!(engine.horizon() > Nanos::ZERO);
    // Store-side: all overflow lives in the compacted tier, rings bounded.
    assert!(store.epochs_held() <= BUDGET * switches.len());
    assert!(store.compacted_epochs_held() > 0);
}
