//! End-to-end daemon tests: a live `hawkeye-serve` daemon on an ephemeral
//! TCP port (and a unix socket) ingesting a replayed scenario over the
//! wire, with the served `Diagnose` verdict required to be identical —
//! anomaly label, culprits, confidence — to the local one-shot reference.

use hawkeye_eval::{optimal_run_config, Verdict};
use hawkeye_serve::{spawn, Endpoint, EpochSink, ServeClient, ServeConfig, StoreConfig};
use hawkeye_workloads::{build_scenario, ScenarioKind, ScenarioParams};

fn incast() -> hawkeye_workloads::Scenario {
    build_scenario(ScenarioKind::MicroBurstIncast, ScenarioParams::default())
}

/// Fault-free incast, streamed over TCP: served diagnosis == one-shot.
#[test]
fn served_diagnosis_matches_oneshot_over_tcp() {
    let sc = incast();
    let cfg = optimal_run_config(1);
    let handle = spawn(
        sc.topo.clone(),
        ServeConfig::default(),
        Endpoint::Tcp("127.0.0.1:0".into()),
    )
    .expect("bind daemon");
    let addr = handle.local_addr.expect("tcp daemon has an address");
    let client = ServeClient::connect_tcp(&addr.to_string()).expect("connect");

    let (outcome, mut client) = hawkeye_serve::replay_streaming(&sc, &cfg, client);
    assert!(outcome.stream.pushed > 0, "no epochs streamed");
    assert_eq!(
        outcome.stream.errors, 0,
        "stream errors: {:?}",
        outcome.stream
    );
    assert_eq!(
        outcome.verdict,
        Some(Verdict::Correct),
        "one-shot reference must be Correct on fault-free incast"
    );

    let w = outcome.window.expect("victim was detected");
    let served = client
        .diagnose(sc.truth.victim, w.from, w.to, outcome.missing.clone())
        .expect("served diagnosis");
    assert!(
        outcome.parity_with(&served),
        "served diagnosis diverged from one-shot:\n  one-shot: {:?}\n  served:   {:?}",
        outcome.oneshot,
        served
    );

    let stats = client.stats().expect("stats");
    let obj = stats.as_object().expect("stats is an object");
    let get = |k: &str| {
        obj.iter()
            .find(|(n, _)| n == k)
            .and_then(|(_, v)| v.as_u64())
            .unwrap_or(0)
    };
    assert!(get("epochs_ingested") > 0, "stats: {stats:?}");
    assert!(get("serve_sessions") >= 1, "stats: {stats:?}");
    assert_eq!(
        get("ingest_shed"),
        0,
        "fault-free replay must not shed: {stats:?}"
    );
    assert!(get("store_epochs_held") > 0, "stats: {stats:?}");

    client.shutdown().expect("shutdown handshake");
    handle.wait();
}

/// The same daemon protocol over a unix socket, exercising ingest + stats
/// + shutdown and socket-file cleanup.
#[test]
fn unix_socket_session_roundtrip() {
    let sc = incast();
    let path = std::env::temp_dir().join(format!("hawkeye-e2e-{}.sock", std::process::id()));
    let handle = spawn(
        sc.topo.clone(),
        ServeConfig::default(),
        Endpoint::Unix(path.clone()),
    )
    .expect("bind unix daemon");
    let mut client = ServeClient::connect_unix(&path).expect("connect unix");

    // Hand-feed a couple of snapshots through the sink interface.
    let cfg = optimal_run_config(2);
    let (_, sink) = hawkeye_serve::replay_streaming(&sc, &cfg, hawkeye_serve::VecSink::default());
    assert!(!sink.snaps.is_empty());
    for snap in sink.snaps.iter().take(4) {
        assert!(client.push(snap).expect("ingest"), "unexpected shed");
    }
    let stats = client.stats().expect("stats");
    assert!(stats.as_object().is_some());

    client.shutdown().expect("shutdown");
    handle.wait();
    assert!(!path.exists(), "socket file must be removed on shutdown");
}

/// Slow-consumer stress: a deliberately throttled shard worker, a
/// two-deep ingest queue and a tiny credit window, streamed with
/// multi-epoch batch frames. Credit backpressure must absorb the speed
/// mismatch with *zero* sheds and zero errors, and the served verdict
/// must still match the one-shot reference exactly — slowness propagates
/// to the producer, it never costs correctness.
#[test]
fn slow_consumer_backpressure_sheds_nothing() {
    let sc = incast();
    let cfg = optimal_run_config(1);
    let handle = spawn(
        sc.topo.clone(),
        ServeConfig {
            queue_depth: 2,
            session_credits: 4,
            ingest_delay_ns: 100_000, // 100µs per snapshot
            store: StoreConfig {
                epoch_budget: 2, // force eviction → compactor-thread folds
                ..StoreConfig::default()
            },
            ..ServeConfig::default()
        },
        Endpoint::Tcp("127.0.0.1:0".into()),
    )
    .expect("bind daemon");
    let addr = handle.local_addr.expect("tcp daemon has an address");
    let client = ServeClient::connect_tcp(&addr.to_string()).expect("connect");

    let (outcome, mut client) = hawkeye_serve::replay_streaming_batched(&sc, &cfg, client, 4);
    assert!(outcome.stream.pushed > 0, "no epochs streamed");
    assert_eq!(
        outcome.stream.shed, 0,
        "backpressure must not shed: {:?}",
        outcome.stream
    );
    assert_eq!(
        outcome.stream.errors, 0,
        "stream errors: {:?}",
        outcome.stream
    );

    let w = outcome.window.expect("victim was detected");
    let served = client
        .diagnose(sc.truth.victim, w.from, w.to, outcome.missing.clone())
        .expect("served diagnosis");
    assert!(
        outcome.parity_with(&served),
        "served diagnosis diverged under backpressure:\n  one-shot: {:?}\n  served:   {:?}",
        outcome.oneshot,
        served
    );

    let stats = client.stats().expect("stats");
    let obj = stats.as_object().expect("stats is an object");
    let get = |k: &str| {
        obj.iter()
            .find(|(n, _)| n == k)
            .and_then(|(_, v)| v.as_u64())
            .unwrap_or(0)
    };
    assert_eq!(
        get("ingest_shed"),
        0,
        "credit flow must not shed: {stats:?}"
    );
    assert!(
        get("store_epochs_compacted_held") > 0,
        "tiny ring must have forced compactor-thread folds: {stats:?}"
    );

    client.shutdown().expect("shutdown handshake");
    handle.wait();
}

/// A snapshot for a switch outside the daemon's topology must not crash
/// the daemon; diagnosis with no ingested telemetry is a remote error,
/// not a hang or a panic.
#[test]
fn diagnose_without_telemetry_is_remote_error() {
    let sc = incast();
    let handle = spawn(
        sc.topo.clone(),
        ServeConfig {
            store: StoreConfig {
                epoch_budget: 8,
                ..StoreConfig::default()
            },
            ..ServeConfig::default()
        },
        Endpoint::Tcp("127.0.0.1:0".into()),
    )
    .expect("bind daemon");
    let addr = handle.local_addr.expect("tcp daemon has an address");
    let mut client = ServeClient::connect_tcp(&addr.to_string()).expect("connect");

    let err = client.diagnose(
        sc.truth.victim,
        hawkeye_sim::Nanos::ZERO,
        hawkeye_sim::Nanos(1_000_000),
        Vec::new(),
    );
    assert!(err.is_err(), "diagnosis over an empty store must error");

    client.shutdown().expect("shutdown");
    handle.wait();
}
