//! Property tests for the epoch telemetry store: delivery order must not
//! matter. Feeding the same observation set out of order and with
//! duplicated redeliveries must reconcile to canonical per-switch
//! snapshots that are **byte-for-byte identical** (via the wire codec) to
//! in-order ingestion, and every query endpoint must agree.
//!
//! The one delivery shape excluded by construction is two *different*
//! collections of one switch carrying the same `taken_at` — a switch CPU
//! timestamps each upload from a monotone clock, so re-collections always
//! differ in `taken_at`; here every observation gets a unique one.

use hawkeye_serve::{StoreConfig, TelemetryStore};
use hawkeye_sim::{FlowKey, Nanos, NodeId};
use hawkeye_telemetry::{
    encode_snapshot, EpochSnapshot, EvictedFlow, FlowRecord, PortRecord, TelemetrySnapshot,
};
use proptest::prelude::*;

const EPOCH_LEN: u64 = 1 << 20;

/// One observation: (switch, epoch step, flow count, packet count, evicted
/// count). Ring slot/id derive from the step like the real ring buffer's,
/// and `taken_at` is made unique per observation by its stream index.
type Obs = ((u32, u64), (u16, u32, u8));

fn obs_strategy() -> impl Strategy<Value = (Obs, u32)> {
    (
        ((0..4u32, 0..8u64), (0..4u16, 4..90u32, 0..2u8)),
        0..1_000_000u32, // shuffle key for the out-of-order delivery
    )
}

fn flow(i: u16) -> FlowKey {
    FlowKey::roce(NodeId(200), NodeId(201), i)
}

fn materialize(o: &Obs, idx: usize) -> TelemetrySnapshot {
    let ((sw, step), (nflows, pkt, nevicted)) = *o;
    let epoch = EpochSnapshot {
        slot: (step % 2) as usize,
        id: (step % 4) as u8,
        start: Nanos(step * EPOCH_LEN),
        len: Nanos(EPOCH_LEN),
        flows: (0..nflows)
            .map(|i| {
                (
                    flow(i),
                    FlowRecord {
                        pkt_count: pkt + u32::from(i),
                        paused_count: pkt / 6,
                        qdepth_sum: u64::from(pkt) * 3,
                        out_port: (i % 2) as u8,
                    },
                )
            })
            .collect(),
        ports: vec![(
            0,
            PortRecord {
                pkt_count: pkt,
                paused_count: pkt / 5,
                qdepth_sum: u64::from(pkt) * 9,
            },
        )],
        meter: vec![(1, 0, u64::from(pkt) * 1048)],
    };
    TelemetrySnapshot {
        switch: NodeId(sw),
        // Monotone in `step` (ring-key reuse is always collected later)
        // and unique per observation (stream index breaks re-collection
        // ties the same way regardless of delivery order).
        taken_at: Nanos((step + 1) * EPOCH_LEN + idx as u64),
        nports: 3,
        max_flows: 32,
        epochs: vec![epoch],
        evicted: (0..nevicted)
            .map(|i| EvictedFlow {
                key: flow(50 + u16::from(i)),
                record: FlowRecord {
                    pkt_count: 5,
                    paused_count: 0,
                    qdepth_sum: 11,
                    out_port: 0,
                },
                epoch_id: (step % 4) as u8,
                slot: (step % 2) as usize,
            })
            .collect(),
    }
}

fn ingest_all(snaps: &[&TelemetrySnapshot]) -> TelemetryStore {
    let mut store = TelemetryStore::new(StoreConfig::default());
    for s in snaps {
        store.append(s);
    }
    store
}

fn canonical_bytes(store: &TelemetryStore) -> Vec<Vec<u8>> {
    store.snapshots().iter().map(encode_snapshot).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Out-of-order + duplicated delivery reconciles byte-for-byte with
    /// in-order ingestion.
    #[test]
    fn reordered_and_duplicated_ingestion_is_canonical(
        stream in proptest::collection::vec(obs_strategy(), 1..32),
        dups in proptest::collection::vec(0..64usize, 0..10),
    ) {
        let snaps: Vec<TelemetrySnapshot> = stream
            .iter()
            .enumerate()
            .map(|(i, (o, _))| materialize(o, i))
            .collect();

        // In-order reference.
        let inorder = ingest_all(&snaps.iter().collect::<Vec<_>>());

        // Shuffled by the generated sort keys, with duplicates spliced in.
        let mut order: Vec<usize> = (0..snaps.len()).collect();
        order.sort_by_key(|&i| (stream[i].1, i));
        let mut delivery: Vec<&TelemetrySnapshot> =
            order.iter().map(|&i| &snaps[i]).collect();
        for (pos, d) in dups.iter().enumerate() {
            let dup = &snaps[d % snaps.len()];
            delivery.insert((pos * 7) % (delivery.len() + 1), dup);
        }
        let shuffled = ingest_all(&delivery);

        prop_assert_eq!(canonical_bytes(&inorder), canonical_bytes(&shuffled));
        prop_assert_eq!(inorder.switches(), shuffled.switches());
        prop_assert_eq!(inorder.epochs_held(), shuffled.epochs_held());
        prop_assert_eq!(inorder.min_watermark(), shuffled.min_watermark());
        for sw in inorder.switches() {
            prop_assert_eq!(inorder.watermark(sw), shuffled.watermark(sw));
        }
        // Query endpoints see the same reconciled telemetry.
        prop_assert_eq!(inorder.flow_history(&flow(0)), shuffled.flow_history(&flow(0)));
        let (from, to) = (Nanos(EPOCH_LEN), Nanos(4 * EPOCH_LEN));
        let a = inorder.snapshots_in(from, to);
        let b = shuffled.snapshots_in(from, to);
        prop_assert_eq!(
            a.iter().map(encode_snapshot).collect::<Vec<_>>(),
            b.iter().map(encode_snapshot).collect::<Vec<_>>()
        );
    }

    /// The ring budget retains the newest epochs regardless of delivery
    /// order: both stores age out the same oldest epochs.
    #[test]
    fn ring_budget_eviction_is_order_independent(
        stream in proptest::collection::vec(obs_strategy(), 4..32),
        budget in 1..4usize,
    ) {
        let snaps: Vec<TelemetrySnapshot> = stream
            .iter()
            .enumerate()
            .map(|(i, (o, _))| materialize(o, i))
            .collect();
        // Compaction off: this property is about the legacy drop path.
        let cfg = StoreConfig {
            epoch_budget: budget,
            compact_budget: 0,
            compact_chunk: 0,
            ..StoreConfig::default()
        };

        let mut inorder = TelemetryStore::new(cfg);
        for s in &snaps {
            inorder.append(s);
        }
        let mut order: Vec<usize> = (0..snaps.len()).collect();
        order.sort_by_key(|&i| (stream[i].1, i));
        let mut shuffled = TelemetryStore::new(cfg);
        for &i in &order {
            shuffled.append(&snaps[i]);
        }

        prop_assert_eq!(canonical_bytes(&inorder), canonical_bytes(&shuffled));
        prop_assert!(inorder
            .switches()
            .iter()
            .all(|&sw| inorder.snapshot_of(sw).is_some_and(|s| s.epochs.len() <= budget)));
    }

    /// A store that compacts aged epochs answers `flow_history` *totals*
    /// and watermarks identically to an unbounded store that never ages
    /// anything out, across out-of-order and duplicated delivery — the
    /// compacted tier loses alignment, never counts.
    ///
    /// Each (switch, step) appears as exactly one collected version (the
    /// distinct-key generator below): a *superseding re-collection* of an
    /// already-folded epoch is the one delivery shape where the tiers
    /// diverge by design — the bucket froze the stale version and drops
    /// the newer one (counted in `epochs_superseded_after_fold`).
    #[test]
    fn compaction_preserves_totals_and_watermarks(
        stream in proptest::collection::vec(obs_strategy(), 4..32),
        dups in proptest::collection::vec(0..64usize, 0..10),
        budget in 1..4usize,
    ) {
        // One version per (switch, step): keep first occurrence.
        let mut seen = std::collections::HashSet::new();
        let deduped: Vec<(Obs, u32)> = stream
            .into_iter()
            .filter(|((k, _), _)| seen.insert(*k))
            .collect();
        let snaps: Vec<TelemetrySnapshot> = deduped
            .iter()
            .enumerate()
            .map(|(i, (o, _))| materialize_distinct_keys(o, i))
            .collect();

        let unbounded_cfg = StoreConfig {
            epoch_budget: 1 << 12,
            compact_budget: 0,
            compact_chunk: 0,
            ..StoreConfig::default()
        };
        let tiered_cfg = StoreConfig {
            epoch_budget: budget,
            compact_budget: 64, // roomy: bucket drops would lose counts
            compact_chunk: 2,
            ..StoreConfig::default()
        };

        let mut unbounded = TelemetryStore::new(unbounded_cfg);
        let mut tiered = TelemetryStore::new(tiered_cfg);
        for s in &snaps {
            unbounded.append(s);
            tiered.append(s);
        }
        // Same observations shuffled with duplicates spliced in.
        let mut order: Vec<usize> = (0..snaps.len()).collect();
        order.sort_by_key(|&i| (deduped[i].1, i));
        let mut delivery: Vec<&TelemetrySnapshot> =
            order.iter().map(|&i| &snaps[i]).collect();
        for (pos, d) in dups.iter().enumerate() {
            let dup = &snaps[d % snaps.len()];
            delivery.insert((pos * 7) % (delivery.len() + 1), dup);
        }
        let mut tiered_shuffled = TelemetryStore::new(tiered_cfg);
        for s in &delivery {
            tiered_shuffled.append(s);
        }

        for t in [&tiered, &tiered_shuffled] {
            prop_assert_eq!(t.stats().compact_epochs_dropped, 0);
            prop_assert!(t.epochs_held() <= budget * t.switches().len());
            prop_assert_eq!(unbounded.min_watermark(), t.min_watermark());
            for sw in unbounded.switches() {
                prop_assert_eq!(unbounded.watermark(sw), t.watermark(sw));
            }
            for f in 0..4u16 {
                prop_assert_eq!(flow_totals(&unbounded, f), flow_totals(t, f));
            }
        }
        // Nothing was folded twice: accepted epochs agree with the
        // unbounded store whichever tier they now live in.
        prop_assert_eq!(
            tiered.stats().epochs_appended,
            unbounded.stats().epochs_appended
        );
    }

    /// Deferred folding (the daemon's compactor-thread mode) is
    /// observation-equivalent to inline folding: staging evicted epochs
    /// and absorbing them through an external [`Compactor`] reproduces
    /// the inline store's compacted tier, flow totals and watermarks for
    /// every delivery order.
    #[test]
    fn deferred_fold_matches_inline(
        stream in proptest::collection::vec(obs_strategy(), 4..32),
        budget in 1..4usize,
    ) {
        let mut seen = std::collections::HashSet::new();
        let deduped: Vec<(Obs, u32)> = stream
            .into_iter()
            .filter(|((k, _), _)| seen.insert(*k))
            .collect();
        let snaps: Vec<TelemetrySnapshot> = deduped
            .iter()
            .enumerate()
            .map(|(i, (o, _))| materialize_distinct_keys(o, i))
            .collect();
        let mut order: Vec<usize> = (0..snaps.len()).collect();
        order.sort_by_key(|&i| (deduped[i].1, i));

        let inline_cfg = StoreConfig {
            epoch_budget: budget,
            compact_budget: 64,
            compact_chunk: 2,
            ..StoreConfig::default()
        };
        let deferred_cfg = StoreConfig {
            deferred_fold: true,
            ..inline_cfg
        };

        let mut inline = TelemetryStore::new(inline_cfg);
        let mut deferred = TelemetryStore::new(deferred_cfg);
        let mut comp = hawkeye_serve::Compactor::new(deferred_cfg);
        for &i in &order {
            inline.append(&snaps[i]);
            deferred.append(&snaps[i]);
            // Absorb in arbitrary-size batches, like the daemon's channel.
            if i % 3 == 0 {
                comp.absorb(deferred.take_pending_folds());
            }
        }
        comp.absorb(deferred.take_pending_folds());

        // Raw tier identical; compacted tier reproduced by the external
        // compactor bucket-for-bucket.
        prop_assert_eq!(canonical_bytes(&inline), canonical_bytes(&deferred));
        prop_assert_eq!(inline.compacted_epochs_held(), comp.epochs_held());
        prop_assert_eq!(inline.compacted_buckets_held(), comp.buckets_held());
        prop_assert_eq!(inline.min_watermark(), deferred.min_watermark());
        for sw in inline.switches() {
            let a: Vec<_> = inline.compacted_of(sw).into_iter().cloned().collect();
            let b: Vec<_> = comp.buckets_of(sw).into_iter().cloned().collect();
            prop_assert_eq!(a, b);
        }
        // Flow totals agree once raw history is joined with the
        // compactor's folded history.
        for f in 0..4u16 {
            let mut hist = deferred.flow_history(&flow(f));
            hist.extend(comp.flow_history(&flow(f)));
            let totals = hist.iter().fold((0u64, 0u64, 0u64, 0u64), |acc, o| {
                (
                    acc.0 + o.pkt_count,
                    acc.1 + o.paused_count,
                    acc.2 + o.qdepth_sum,
                    acc.3 + u64::from(o.epochs),
                )
            });
            prop_assert_eq!(flow_totals(&inline, f), totals);
        }
    }
}

/// `materialize` with ring keys distinct per step (slot = step % 8,
/// id = step), so keep-latest never merges two different steps — every
/// accepted epoch is a distinct observation both stores must count.
fn materialize_distinct_keys(o: &Obs, idx: usize) -> TelemetrySnapshot {
    let ((_, step), _) = *o;
    let mut snap = materialize(o, idx);
    snap.epochs[0].slot = (step % 8) as usize;
    snap.epochs[0].id = step as u8;
    for ev in &mut snap.evicted {
        ev.slot = (step % 8) as usize;
        ev.epoch_id = step as u8;
    }
    snap
}

/// (pkt, paused, qdepth, epochs) sums over a flow's whole history,
/// whatever mix of fidelities serves it.
fn flow_totals(store: &TelemetryStore, f: u16) -> (u64, u64, u64, u64) {
    store
        .flow_history(&flow(f))
        .iter()
        .fold((0, 0, 0, 0), |acc, o| {
            (
                acc.0 + o.pkt_count,
                acc.1 + o.paused_count,
                acc.2 + o.qdepth_sum,
                acc.3 + u64::from(o.epochs),
            )
        })
}
