//! Property tests for crash recovery of the durable evidence log: however
//! a log is torn (truncated at *any* byte offset) or corrupted (any byte
//! flipped), [`scan`] must never panic, must recover **exactly** the
//! longest valid record prefix, and replaying that prefix must rebuild
//! the same store/compactor/audit state as feeding the prefix directly.

use hawkeye_serve::wal::{
    FsyncPolicy, Wal, WalConfig, REC_HEADER_LEN, REC_SNAPSHOT, SEG_HEADER_LEN,
};
use hawkeye_serve::{scan, AuditTrail, Compactor, StoreConfig, TelemetryStore, WalEntry};
use hawkeye_sim::{FlowKey, Nanos, NodeId};
use hawkeye_telemetry::{
    encode_snapshot, EpochSnapshot, FlowRecord, PortRecord, TelemetrySnapshot,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const EPOCH_LEN: u64 = 1 << 20;
const SEG_HDR: u64 = SEG_HEADER_LEN as u64;
const REC_HDR: u64 = REC_HEADER_LEN as u64;

/// Fresh directory per proptest case (cases run sequentially, but the
/// counter keeps reruns and the two tests apart).
fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "hawkeye-walprop-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small but shape-varied snapshot: payload size changes with the flow
/// count, so record boundaries land at irregular offsets.
fn snap(o: (u32, u64, u16, u32), idx: usize) -> TelemetrySnapshot {
    let (sw, step, nflows, pkt) = o;
    TelemetrySnapshot {
        switch: NodeId(sw),
        taken_at: Nanos((step + 1) * EPOCH_LEN + idx as u64),
        nports: 2,
        max_flows: 16,
        epochs: vec![EpochSnapshot {
            slot: (step % 8) as usize,
            id: step as u8,
            start: Nanos(step * EPOCH_LEN),
            len: Nanos(EPOCH_LEN),
            flows: (0..nflows)
                .map(|i| {
                    (
                        FlowKey::roce(NodeId(70), NodeId(71), i),
                        FlowRecord {
                            pkt_count: pkt + u32::from(i),
                            paused_count: pkt / 4,
                            qdepth_sum: u64::from(pkt) * 5,
                            out_port: (i % 2) as u8,
                        },
                    )
                })
                .collect(),
            ports: vec![(
                0,
                PortRecord {
                    pkt_count: pkt,
                    paused_count: pkt / 3,
                    qdepth_sum: u64::from(pkt) * 7,
                },
            )],
            meter: vec![],
        }],
        evicted: vec![],
    }
}

fn obs_strategy() -> impl Strategy<Value = (u32, u64, u16, u32)> {
    (0..3u32, 0..8u64, 0..5u16, 1..500u32)
}

/// Segment sizes spanning "every record rotates" to "one segment fits all".
fn seg_bytes_strategy() -> impl Strategy<Value = u64> {
    (0..3usize).prop_map(|i| [256u64, 700, 4096][i])
}

/// Write `snaps` as one snapshot record each and return the segment files
/// (sorted by start seq) plus, per file, the count of records it holds.
fn build_log(dir: &Path, segment_bytes: u64, snaps: &[TelemetrySnapshot]) -> Vec<(PathBuf, u64)> {
    let cfg = WalConfig {
        fsync: FsyncPolicy::Never,
        segment_bytes,
        retire_segments: 0,
        ..WalConfig::new(dir)
    };
    let mut wal = Wal::create(cfg).expect("create wal");
    for s in snaps {
        wal.append(REC_SNAPSHOT, &encode_snapshot(s))
            .expect("append");
    }
    drop(wal);
    let mut files: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)
        .expect("read dir")
        .map(|e| e.expect("dirent").path())
        .filter_map(|p| {
            hawkeye_serve::wal::parse_segment_name(p.file_name()?.to_str()?).map(|s| (s, p))
        })
        .collect();
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for (i, (start, p)) in files.iter().enumerate() {
        let end = files
            .get(i + 1)
            .map_or(snaps.len() as u64, |(next, _)| *next);
        out.push((p.clone(), end - start));
    }
    out
}

/// The record boundaries inside one segment file: `ends[i]` is the byte
/// offset one past record `i`, derived from the framing (not the scanner).
fn record_ends(bytes: &[u8], nrecords: u64) -> Vec<u64> {
    let mut pos = SEG_HDR;
    let mut ends = Vec::new();
    for _ in 0..nrecords {
        let len = u32::from_le_bytes(bytes[pos as usize..pos as usize + 4].try_into().unwrap());
        pos += REC_HDR + u64::from(len);
        ends.push(pos);
    }
    assert_eq!(pos, bytes.len() as u64, "framing disagrees with file size");
    ends
}

/// The scanned records must be exactly snapshots `0..n` in order.
fn assert_prefix(scan: &hawkeye_serve::Scan, snaps: &[TelemetrySnapshot], n: u64) {
    assert_eq!(scan.records.len() as u64, n, "prefix length");
    assert_eq!(scan.plan.next_seq, n, "resume seq");
    for (i, rec) in scan.records.iter().enumerate() {
        assert_eq!(rec.seq, i as u64);
        match &rec.entry {
            WalEntry::Snapshot(s) => assert_eq!(s, &snaps[i], "record {i} mutated"),
            other => panic!("record {i}: unexpected entry {other:?}"),
        }
    }
}

/// Rebuild state from a scan and fingerprint it against a store fed the
/// same snapshot prefix directly.
fn assert_replay_matches_direct(dir: &Path, snaps: &[TelemetrySnapshot], n: u64) {
    let cfg = StoreConfig {
        epoch_budget: 2,
        compact_budget: 8,
        compact_chunk: 2,
        deferred_fold: true,
        ..StoreConfig::default()
    };
    let s = scan(dir).expect("scan");
    let mut stores = vec![TelemetryStore::new(cfg)];
    let mut comp = Compactor::new(cfg);
    let mut audit = AuditTrail::new(8);
    hawkeye_serve::recovery::replay(&s.records, &mut stores, &mut comp, &mut audit);

    let mut direct = TelemetryStore::new(cfg);
    let mut direct_comp = Compactor::new(cfg);
    for s in &snaps[..n as usize] {
        direct.append(s);
        direct_comp.absorb(direct.take_pending_folds());
    }
    let fp = |st: &TelemetryStore, c: &Compactor| {
        format!(
            "{:?}|{:?}|{:?}|{:?}",
            st.snapshots(),
            st.min_watermark(),
            st.retention_horizon(),
            st.switches()
                .iter()
                .map(|&sw| c.buckets_of(sw).into_iter().cloned().collect::<Vec<_>>())
                .collect::<Vec<_>>()
        )
    };
    assert_eq!(
        fp(&stores[0], &comp),
        fp(&direct, &direct_comp),
        "replayed state diverges from direct ingestion of the same prefix"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Truncate the log at EVERY byte offset of every segment: the scan
    /// never panics and recovers exactly the records whose bytes fully
    /// survive — nothing from the torn file's suffix, nothing from the
    /// (now seq-discontinuous) later segments.
    #[test]
    fn truncation_at_every_offset_recovers_exact_prefix(
        stream in proptest::collection::vec(obs_strategy(), 1..10),
        seg_bytes in seg_bytes_strategy(),
    ) {
        let snaps: Vec<TelemetrySnapshot> = stream
            .iter()
            .enumerate()
            .map(|(i, o)| snap(*o, i))
            .collect();
        let dir = tmp_dir("trunc");
        let files = build_log(&dir, seg_bytes, &snaps);

        let mut before = 0u64; // records living in earlier files
        for (fi, (path, nrecords)) in files.iter().enumerate() {
            let original = std::fs::read(path).expect("read segment");
            let ends = record_ends(&original, *nrecords);
            // Exclusive bound: cutting at the full length is a no-op.
            for cut in 0..original.len() as u64 {
                std::fs::write(path, &original[..cut as usize]).expect("truncate");
                let s = scan(&dir).expect("scan");
                let expect = if cut < SEG_HDR {
                    before // torn header dooms the whole file
                } else {
                    before + ends.iter().filter(|&&e| e <= cut).count() as u64
                };
                assert_prefix(&s, &snaps, expect);
                // A cut landing exactly on a record boundary of the LAST
                // segment leaves a shorter-but-clean log — undetectable by
                // construction. Every other cut must be counted: either
                // bytes died mid-record/mid-header, or a later segment's
                // start seq no longer lines up.
                let clean_tail_cut = fi + 1 == files.len()
                    && cut >= SEG_HDR
                    && (cut == SEG_HDR || ends.contains(&cut));
                if !clean_tail_cut {
                    prop_assert!(
                        s.truncated_records > 0,
                        "damage at cut {cut} went uncounted"
                    );
                }
            }
            std::fs::write(path, &original).expect("restore");
            before += nrecords;
        }
        // Untouched log restored: full prefix, nothing truncated.
        let s = scan(&dir).expect("scan");
        assert_prefix(&s, &snaps, snaps.len() as u64);
        prop_assert_eq!(s.truncated_records, 0);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// Flip any single byte anywhere in the log: the CRC (or the header
    /// check) rejects the record it lands in, the scan recovers exactly
    /// the records before it, and replaying that prefix rebuilds the same
    /// state as direct ingestion.
    #[test]
    fn byte_flip_truncates_at_the_corrupt_record_and_replays_clean(
        stream in proptest::collection::vec(obs_strategy(), 1..10),
        seg_bytes in seg_bytes_strategy(),
        flip_pick in 0..1_000_000u64,
    ) {
        let snaps: Vec<TelemetrySnapshot> = stream
            .iter()
            .enumerate()
            .map(|(i, o)| snap(*o, i))
            .collect();
        let dir = tmp_dir("flip");
        let files = build_log(&dir, seg_bytes, &snaps);

        let total: u64 = files
            .iter()
            .map(|(p, _)| std::fs::metadata(p).expect("meta").len())
            .sum();
        let mut flip_at = flip_pick % total;
        let mut before = 0u64;
        for (path, nrecords) in &files {
            let original = std::fs::read(path).expect("read segment");
            if flip_at >= original.len() as u64 {
                flip_at -= original.len() as u64;
                before += nrecords;
                continue;
            }
            let mut bytes = original.clone();
            bytes[flip_at as usize] ^= 0xFF;
            std::fs::write(path, &bytes).expect("corrupt");

            let ends = record_ends(&original, *nrecords);
            let expect = if flip_at < SEG_HDR {
                before // corrupt header dooms the whole file
            } else {
                before + ends.iter().filter(|&&e| e <= flip_at).count() as u64
            };
            let s = scan(&dir).expect("scan");
            assert_prefix(&s, &snaps, expect);
            prop_assert!(s.truncated_records > 0, "flip at {flip_at} went uncounted");
            assert_replay_matches_direct(&dir, &snaps, expect);
            break;
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

/// A zero-length tail segment (crash between `create` of the next segment
/// and its header write) is condemned without losing the earlier records.
#[test]
fn empty_tail_segment_is_doomed_not_fatal() {
    let stream: Vec<(u32, u64, u16, u32)> = (0..5).map(|i| (i % 2, u64::from(i), 3, 40)).collect();
    let snaps: Vec<TelemetrySnapshot> = stream
        .iter()
        .enumerate()
        .map(|(i, o)| snap(*o, i))
        .collect();
    let dir = tmp_dir("emptytail");
    build_log(&dir, 1 << 20, &snaps);
    std::fs::write(dir.join(format!("seg-{:016}.wal", snaps.len())), []).expect("empty tail");

    let s = scan(&dir).expect("scan");
    assert_prefix(&s, &snaps, snaps.len() as u64);
    assert_eq!(s.truncated_records, 1, "empty tail must be counted");
    assert_replay_matches_direct(&dir, &snaps, snaps.len() as u64);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
