//! DCQCN congestion control (Zhu et al., SIGCOMM 2015) — the reaction-point
//! state machine run per flow by the sending NIC.
//!
//! The receiver notification point and the switch congestion point (RED/ECN
//! marking) live in `host.rs` and `switch.rs`; this module is the pure rate
//! controller so it can be unit-tested in isolation.

use crate::time::Nanos;
use crate::units::Rate;

/// DCQCN tunables. Defaults follow the common 100 Gbps deployments
/// (and the NS-3 HPCC simulator's DCQCN configuration).
#[derive(Debug, Clone, Copy)]
pub struct DcqcnConfig {
    /// alpha EWMA gain `g`.
    pub g: f64,
    /// Alpha-update timer period (no-CNP decay), typically 55 µs.
    pub alpha_timer: Nanos,
    /// Rate-increase timer period, typically 55 µs (timer-based stage).
    pub increase_timer: Nanos,
    /// Bytes per byte-counter increase stage.
    pub byte_counter: u64,
    /// Additive increase step (bits/s).
    pub rai: f64,
    /// Hyper increase step (bits/s).
    pub rhai: f64,
    /// Fast-recovery iterations before additive increase.
    pub fast_recovery_threshold: u32,
    /// Minimum sending rate (bits/s).
    pub min_rate: f64,
    /// Line rate cap (bits/s).
    pub line_rate: f64,
}

impl DcqcnConfig {
    pub fn for_line_rate(line_rate_bps: f64) -> Self {
        DcqcnConfig {
            g: 1.0 / 256.0,
            alpha_timer: Nanos::from_micros(55),
            increase_timer: Nanos::from_micros(55),
            byte_counter: 10 * 1024 * 1024,
            rai: 40e6,
            rhai: 200e6,
            fast_recovery_threshold: 5,
            min_rate: 100e6,
            line_rate: line_rate_bps,
        }
    }
}

/// Per-flow DCQCN reaction-point state.
#[derive(Debug, Clone)]
pub struct Dcqcn {
    cfg: DcqcnConfig,
    /// Current sending rate Rc.
    rc: f64,
    /// Target rate Rt.
    rt: f64,
    alpha: f64,
    /// CNP seen since the last alpha timer tick.
    cnp_since_alpha_tick: bool,
    /// Successive increase iterations from the timer (T) and byte counter (B).
    timer_iter: u32,
    byte_iter: u32,
    bytes_since_stage: u64,
    /// True after the first CNP; rates stay at line rate until then
    /// (RoCEv2 NICs start at line rate, §2.2 "line-rate start").
    cut_happened: bool,
}

impl Dcqcn {
    pub fn new(cfg: DcqcnConfig) -> Self {
        Dcqcn {
            rc: cfg.line_rate,
            rt: cfg.line_rate,
            alpha: 1.0,
            cnp_since_alpha_tick: false,
            timer_iter: 0,
            byte_iter: 0,
            bytes_since_stage: 0,
            cut_happened: false,
            cfg,
        }
    }

    /// Current paced sending rate.
    pub fn rate(&self) -> Rate {
        Rate(self.rc)
    }

    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// A CNP arrived: cut the rate and reset the increase state machine.
    pub fn on_cnp(&mut self) {
        self.cnp_since_alpha_tick = true;
        self.cut_happened = true;
        self.rt = self.rc;
        self.rc = (self.rc * (1.0 - self.alpha / 2.0)).max(self.cfg.min_rate);
        self.alpha = (1.0 - self.cfg.g) * self.alpha + self.cfg.g;
        self.timer_iter = 0;
        self.byte_iter = 0;
        self.bytes_since_stage = 0;
    }

    /// Alpha-update timer tick (every `cfg.alpha_timer`).
    pub fn on_alpha_timer(&mut self) {
        if !self.cnp_since_alpha_tick {
            self.alpha *= 1.0 - self.cfg.g;
        }
        self.cnp_since_alpha_tick = false;
    }

    /// Rate-increase timer tick (every `cfg.increase_timer`).
    pub fn on_increase_timer(&mut self) {
        self.timer_iter += 1;
        self.increase();
    }

    /// Account transmitted bytes; may trigger byte-counter increase stages.
    pub fn on_bytes_sent(&mut self, bytes: u64) {
        if !self.cut_happened {
            return;
        }
        self.bytes_since_stage += bytes;
        while self.bytes_since_stage >= self.cfg.byte_counter {
            self.bytes_since_stage -= self.cfg.byte_counter;
            self.byte_iter += 1;
            self.increase();
        }
    }

    /// One increase step; the stage is chosen by max(T, B) iterations as in
    /// the DCQCN paper: fast recovery, then additive, then hyper increase.
    fn increase(&mut self) {
        if !self.cut_happened {
            return;
        }
        let iter = self.timer_iter.max(self.byte_iter);
        if iter > self.cfg.fast_recovery_threshold {
            let both_past = self.timer_iter > self.cfg.fast_recovery_threshold
                && self.byte_iter > self.cfg.fast_recovery_threshold;
            let step = if both_past {
                // Hyper increase once both counters pass the threshold.
                let i = self
                    .timer_iter
                    .min(self.byte_iter)
                    .saturating_sub(self.cfg.fast_recovery_threshold)
                    as f64;
                i * self.cfg.rhai
            } else {
                self.cfg.rai
            };
            self.rt = (self.rt + step).min(self.cfg.line_rate);
        }
        self.rc = ((self.rt + self.rc) / 2.0).min(self.cfg.line_rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc() -> Dcqcn {
        Dcqcn::new(DcqcnConfig::for_line_rate(100e9))
    }

    #[test]
    fn starts_at_line_rate() {
        let d = cc();
        assert_eq!(d.rate().0, 100e9);
        assert_eq!(d.alpha(), 1.0);
    }

    #[test]
    fn cnp_halves_rate_initially() {
        let mut d = cc();
        d.on_cnp();
        // alpha was 1.0 -> cut by alpha/2 = 50%.
        assert!((d.rate().0 - 50e9).abs() < 1e6);
        // alpha decays toward CNP-present steady state.
        assert!(d.alpha() <= 1.0);
    }

    #[test]
    fn repeated_cnps_approach_min_rate() {
        let mut d = cc();
        for _ in 0..2000 {
            d.on_cnp();
        }
        assert_eq!(d.rate().0, 100e6); // min_rate floor
    }

    #[test]
    fn alpha_decays_without_cnps() {
        let mut d = cc();
        d.on_cnp();
        let a0 = d.alpha();
        for _ in 0..100 {
            d.on_alpha_timer();
        }
        assert!(d.alpha() < a0 * 0.8);
    }

    #[test]
    fn fast_recovery_converges_to_target() {
        let mut d = cc();
        d.on_cnp(); // rc=50G, rt=100G
        for _ in 0..5 {
            d.on_increase_timer(); // fast recovery: rc -> (rc+rt)/2
        }
        // After 5 halvings toward target: 100 - 50/2^5 = 98.44 G
        assert!(d.rate().0 > 98e9 && d.rate().0 < 100e9);
    }

    #[test]
    fn additive_then_hyper_increase_regains_line_rate() {
        let mut d = cc();
        d.on_cnp();
        for _ in 0..200 {
            d.on_increase_timer();
            d.on_bytes_sent(20 * 1024 * 1024);
        }
        assert!((d.rate().0 - 100e9).abs() < 1e9, "rate {}", d.rate().0);
    }

    #[test]
    fn no_increase_before_first_cut() {
        let mut d = cc();
        d.on_increase_timer();
        d.on_bytes_sent(100 * 1024 * 1024);
        assert_eq!(d.rate().0, 100e9);
    }

    #[test]
    fn rate_never_exceeds_line_rate_nor_drops_below_min() {
        let mut d = cc();
        for i in 0..10_000u32 {
            match i % 7 {
                0 => d.on_cnp(),
                1 | 2 => d.on_increase_timer(),
                3 => d.on_alpha_timer(),
                _ => d.on_bytes_sent(1_000_000),
            }
            let r = d.rate().0;
            assert!(
                (100e6 - 1.0..=100e9 + 1.0).contains(&r),
                "rate {r} out of bounds"
            );
        }
    }
}
