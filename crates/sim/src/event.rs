//! Deterministic discrete-event queue.
//!
//! A binary heap keyed by `(time, sequence)`: events scheduled at the same
//! instant fire in insertion order, making runs bit-for-bit reproducible
//! regardless of heap internals.

use crate::ids::NodeId;
use crate::packet::Packet;
use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A frame finishes propagating and arrives at `node` on local `port`.
    Arrive {
        node: NodeId,
        port: u8,
        packet: Packet,
    },
    /// A switch/host output port finished serializing its current frame;
    /// try to start the next one.
    PortTxDone { node: NodeId, port: u8 },
    /// A previously-paused output port's pause timer may have expired, or a
    /// resume arrived: re-evaluate whether it can transmit.
    PortKick { node: NodeId, port: u8 },
    /// A host flow's pacing timer allows its next packet.
    FlowReady { node: NodeId, flow_idx: u32 },
    /// Periodic DCQCN alpha-update timer for a flow.
    DcqcnAlpha { node: NodeId, flow_idx: u32 },
    /// Periodic DCQCN rate-increase timer for a flow.
    DcqcnIncrease { node: NodeId, flow_idx: u32 },
    /// A switch re-evaluates whether its ingress-side PAUSE needs refreshing.
    PfcRefresh { node: NodeId, port: u8 },
    /// A faulty host injects its next gratuitous PFC PAUSE frame.
    HostPfcInject { node: NodeId },
    /// Start a flow (first packet becomes eligible).
    FlowStart { node: NodeId, flow_idx: u32 },
    /// Host detection-agent periodic check of flow RTTs.
    AgentCheck { node: NodeId },
}

#[derive(Debug)]
struct Scheduled {
    at: Nanos,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest (time, seq).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
    now: Nanos,
    popped: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.popped
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `kind` at absolute time `at`.
    ///
    /// Panics in debug builds if `at` is in the past; the simulator never
    /// rewinds time.
    pub fn schedule(&mut self, at: Nanos, kind: EventKind) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, kind });
    }

    /// Schedule `kind` after a delay from now.
    pub fn schedule_in(&mut self, delay: Nanos, kind: EventKind) {
        self.schedule(self.now + delay, kind);
    }

    /// Pop the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(Nanos, EventKind)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now);
        self.now = s.at;
        self.popped += 1;
        Some((s.at, s.kind))
    }

    /// Peek at the next event time without popping.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|s| s.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kick(n: u32) -> EventKind {
        EventKind::PortKick {
            node: NodeId(n),
            port: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(30), kick(3));
        q.schedule(Nanos(10), kick(1));
        q.schedule(Nanos(20), kick(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.0).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for n in 0..100 {
            q.schedule(Nanos(5), kick(n));
        }
        let mut seen = Vec::new();
        while let Some((_, EventKind::PortKick { node, .. })) = q.pop() {
            seen.push(node.0);
        }
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(10), kick(0));
        q.schedule(Nanos(10), kick(1));
        q.schedule(Nanos(25), kick(2));
        assert_eq!(q.now(), Nanos::ZERO);
        q.pop();
        assert_eq!(q.now(), Nanos(10));
        q.pop();
        assert_eq!(q.now(), Nanos(10));
        q.pop();
        assert_eq!(q.now(), Nanos(25));
        assert!(q.pop().is_none());
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(100), kick(0));
        q.pop();
        q.schedule_in(Nanos(5), kick(1));
        assert_eq!(q.peek_time(), Some(Nanos(105)));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(100), kick(0));
        q.pop();
        q.schedule(Nanos(50), kick(1));
    }
}
