//! Deterministic discrete-event queue.
//!
//! The queue is a **hierarchical timer wheel** (calendar queue) specialized
//! for the simulator's timestamp distribution, replacing the original
//! `BinaryHeap` (kept as [`HeapQueue`] for benchmarking and equivalence
//! tests):
//!
//! - **Near-future events** — serialization and propagation delays, pacing
//!   gaps — land in fixed-width buckets of `2^BUCKET_SHIFT` ns. The wheel
//!   spans `NUM_BUCKETS` buckets (~0.5 ms), which covers every periodic
//!   timer the simulator uses (DCQCN alpha/increase ≈ 55 µs, agent checks
//!   ≈ 100 µs, PFC refresh ≈ 200 µs), so the overflow heap is cold.
//! - **Far-future events** — initial flow starts, long injector schedules —
//!   go to an overflow `BinaryHeap` and migrate into the wheel as the
//!   cursor advances and frees buckets for later times.
//!
//! Total order is `(time, sequence)` exactly as before: events scheduled at
//! the same instant fire in insertion order, making runs bit-for-bit
//! reproducible regardless of the container internals. The earliest pending
//! event is kept popped-out in a `next` slot so `peek_time` stays O(1).
//!
//! The queue also owns a **packet pool**: `Arrive` events carry a
//! [`PacketRef`] (a `u32` slot index) instead of an inline [`Packet`], so
//! the common `Arrive`/`PortTxDone` events stop copying packet payloads
//! through every container move; freed slots are recycled via a free list.

use crate::ids::NodeId;
use crate::packet::Packet;
use crate::time::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle to a packet parked in the queue's pool while its `Arrive` event
/// is in flight. Resolve with [`EventQueue::packet`] (peek) or
/// [`EventQueue::take_packet`] (consume and recycle the slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRef(u32);

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A frame finishes propagating and arrives at `node` on local `port`.
    /// The frame itself lives in the queue's packet pool.
    Arrive {
        node: NodeId,
        port: u8,
        packet: PacketRef,
    },
    /// A switch/host output port finished serializing its current frame;
    /// try to start the next one.
    PortTxDone { node: NodeId, port: u8 },
    /// A previously-paused output port's pause timer may have expired, or a
    /// resume arrived: re-evaluate whether it can transmit.
    PortKick { node: NodeId, port: u8 },
    /// A host flow's pacing timer allows its next packet.
    FlowReady { node: NodeId, flow_idx: u32 },
    /// Periodic DCQCN alpha-update timer for a flow.
    DcqcnAlpha { node: NodeId, flow_idx: u32 },
    /// Periodic DCQCN rate-increase timer for a flow.
    DcqcnIncrease { node: NodeId, flow_idx: u32 },
    /// A switch re-evaluates whether its ingress-side PAUSE needs refreshing.
    PfcRefresh { node: NodeId, port: u8 },
    /// A faulty host injects its next gratuitous PFC PAUSE frame.
    HostPfcInject { node: NodeId },
    /// Start a flow (first packet becomes eligible).
    FlowStart { node: NodeId, flow_idx: u32 },
    /// Host detection-agent periodic check of flow RTTs.
    AgentCheck { node: NodeId },
    /// Re-poll timer for a flow whose detection probe may have been lost
    /// (attempt is 1-based; see `host::ProbeRetryConfig`).
    ProbeRetry {
        node: NodeId,
        flow_idx: u32,
        attempt: u32,
    },
}

#[derive(Debug, Clone, Copy)]
struct Scheduled {
    at: Nanos,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest (time, seq).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Free-listed storage for packets referenced by in-flight `Arrive` events.
#[derive(Debug, Default)]
struct PacketPool {
    slots: Vec<Packet>,
    free: Vec<u32>,
}

impl PacketPool {
    fn alloc(&mut self, p: Packet) -> PacketRef {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = p;
                PacketRef(i)
            }
            None => {
                self.slots.push(p);
                PacketRef((self.slots.len() - 1) as u32)
            }
        }
    }

    fn get(&self, r: PacketRef) -> &Packet {
        &self.slots[r.0 as usize]
    }

    fn take(&mut self, r: PacketRef) -> Packet {
        self.free.push(r.0);
        self.slots[r.0 as usize]
    }
}

/// log2 of the level-1 bucket width in nanoseconds (256 ns per bucket).
const BUCKET_SHIFT: u32 = 8;
/// log2 of the buckets per wheel level (2048 each).
const LEVEL_SHIFT: u32 = 11;
/// Buckets per wheel level (must be a power of two). Level 1: 2048 ×
/// 256 ns ≈ 524 µs of horizon — wider than every periodic timer in the
/// simulator. Level 2: 2048 × 524 µs ≈ 1.07 s.
const NUM_BUCKETS: u64 = 1 << LEVEL_SHIFT;
const BUCKET_MASK: u64 = NUM_BUCKETS - 1;
/// Occupancy-bitmap words: one bit per bucket.
const OCC_WORDS: usize = (NUM_BUCKETS / 64) as usize;

/// A bucket-occupancy bitmap with a one-word summary level, shared by both
/// wheel levels: finding the next occupied bucket is two `trailing_zeros`,
/// never a word-by-word sweep.
#[derive(Debug)]
struct OccMap {
    /// One bit per bucket: set iff the bucket is non-empty.
    words: [u64; OCC_WORDS],
    /// Bit `w` set iff `words[w] != 0`. `u32` so rotation wraps at exactly
    /// `OCC_WORDS` bits.
    sum: u32,
}

impl OccMap {
    fn new() -> Self {
        OccMap {
            words: [0; OCC_WORDS],
            sum: 0,
        }
    }

    #[inline]
    fn set(&mut self, b: usize) {
        self.words[b >> 6] |= 1 << (b & 63);
        self.sum |= 1 << (b >> 6);
    }

    #[inline]
    fn clear(&mut self, b: usize) {
        self.words[b >> 6] &= !(1 << (b & 63));
        if self.words[b >> 6] == 0 {
            self.sum &= !(1 << (b >> 6));
        }
    }

    /// Buckets from index `start` (inclusive, wrapping) to the next
    /// occupied bucket, or `None` if all are empty. Callers map the wrapped
    /// index delta back to a tick: every stored event is within one
    /// revolution of the cursor, so the delta is unambiguous.
    fn next_occupied_delta(&self, start: usize) -> Option<u64> {
        let (sw, sb) = (start >> 6, start & 63);
        let first = self.words[sw] >> sb;
        if first != 0 {
            return Some(first.trailing_zeros() as u64);
        }
        // Rotate the summary so bit 0 is word `sw + 1`, pick the first
        // non-empty word at or after it (wrapping), then scan just that
        // word. If the scan wraps all the way back to word `sw`, only its
        // bits below `sb` are ahead of the start (the rest were covered by
        // `first`).
        let rot = self.sum.rotate_right((sw as u32 + 1) % OCC_WORDS as u32);
        if rot == 0 {
            return None;
        }
        let k = rot.trailing_zeros() as usize; // words past `sw`, 0-based
        let wi = (sw + 1 + k) % OCC_WORDS;
        let w = if wi == sw {
            self.words[sw] & ((1u64 << sb) - 1)
        } else {
            self.words[wi]
        };
        if w == 0 {
            return None;
        }
        Some((64 - sb) as u64 + (k * 64) as u64 + w.trailing_zeros() as u64)
    }
}

/// The event queue: two-level hierarchical timer wheel + far-future
/// overflow heap + packet pool.
///
/// Level 1 holds the rest of the cursor's current *epoch* (an aligned
/// 2048-tick span); level 2 holds one bucket per epoch for the next ~1.07 s;
/// the overflow heap holds anything beyond. An event scheduled far ahead
/// costs three O(1) bucket moves over its lifetime (level 2 → level 1 →
/// popped) instead of `O(log n)` heap sifts at both ends.
#[derive(Debug)]
pub struct EventQueue {
    /// Level 1: 256 ns buckets, indexed by `(at >> BUCKET_SHIFT) &
    /// BUCKET_MASK`. Holds only ticks of the cursor's epoch. Unsorted;
    /// ordered while draining.
    buckets: Vec<Vec<Scheduled>>,
    occ: OccMap,
    /// Level 2: one bucket per epoch (`at >> (BUCKET_SHIFT + LEVEL_SHIFT)`),
    /// holding epochs `epoch+1 ..= epoch+2048`. A bucket is re-scattered
    /// wholesale into level 1 when the cursor enters its epoch.
    l2_buckets: Vec<Vec<Scheduled>>,
    l2_occ: OccMap,
    /// Small ordering heap for the bucket currently being drained — and for
    /// the rare event scheduled *behind* the scan cursor (possible right
    /// after the cursor jumped ahead to a far-future event): such an event
    /// is earlier than everything still in the wheel, so popping `drain`
    /// first keeps the global (time, seq) order exact.
    drain: BinaryHeap<Scheduled>,
    /// Events beyond the level-2 horizon.
    overflow: BinaryHeap<Scheduled>,
    /// The earliest pending event, kept extracted so `peek_time` is O(1).
    next: Option<Scheduled>,
    /// Bucket tick (`time >> BUCKET_SHIFT`) the cursor sits on.
    cur_tick: u64,
    /// The cursor's epoch: always `cur_tick >> LEVEL_SHIFT`.
    epoch: u64,
    /// Events currently stored in level-1 `buckets` (excludes `drain`,
    /// level 2 and `next`).
    near_len: usize,
    /// Events currently stored in level-2 buckets.
    l2_len: usize,
    len: usize,
    seq: u64,
    now: Nanos,
    popped: u64,
    pool: PacketPool,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            occ: OccMap::new(),
            l2_buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            l2_occ: OccMap::new(),
            drain: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            next: None,
            cur_tick: 0,
            epoch: 0,
            near_len: 0,
            l2_len: 0,
            len: 0,
            seq: 0,
            now: Nanos::ZERO,
            popped: 0,
            pool: PacketPool::default(),
        }
    }
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.popped
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `kind` at absolute time `at`.
    ///
    /// Panics in debug builds if `at` is in the past; the simulator never
    /// rewinds time.
    #[inline]
    pub fn schedule(&mut self, at: Nanos, kind: EventKind) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let s = Scheduled { at, seq, kind };
        self.len += 1;
        match &self.next {
            None => self.next = Some(s),
            Some(n) if s.at < n.at => {
                // New earliest event: swap it into the stash and file the
                // old one back into the wheel (same tick as the cursor or
                // later, so the scan never misses it).
                let old = self.next.replace(s).expect("checked");
                self.insert(old);
            }
            Some(_) => self.insert(s),
        }
    }

    /// Schedule `kind` after a delay from now.
    #[inline]
    pub fn schedule_in(&mut self, delay: Nanos, kind: EventKind) {
        self.schedule(self.now + delay, kind);
    }

    /// Park `packet` in the pool and schedule its arrival at `node`/`port`.
    pub fn schedule_arrive(&mut self, at: Nanos, node: NodeId, port: u8, packet: Packet) {
        let r = self.pool.alloc(packet);
        self.schedule(
            at,
            EventKind::Arrive {
                node,
                port,
                packet: r,
            },
        );
    }

    /// Peek at a pooled packet without consuming its slot.
    pub fn packet(&self, r: PacketRef) -> &Packet {
        self.pool.get(r)
    }

    /// Consume a pooled packet, recycling its slot through the free list.
    pub fn take_packet(&mut self, r: PacketRef) -> Packet {
        self.pool.take(r)
    }

    fn insert(&mut self, s: Scheduled) {
        let tick = s.at.0 >> BUCKET_SHIFT;
        if tick <= self.cur_tick {
            // At the cursor's own tick (a hot path: zero/short-delay
            // follow-ups) or behind it (rare: the cursor jumped ahead of
            // `now` to a sparse region). Either way the event is ordered
            // before everything in the wheel, so it goes straight into the
            // drain heap — consulted first — skipping the bucket
            // round-trip a current-tick event would otherwise pay.
            self.drain.push(s);
            return;
        }
        let tick2 = tick >> LEVEL_SHIFT;
        if tick2 == self.epoch {
            let b = (tick & BUCKET_MASK) as usize;
            self.buckets[b].push(s);
            self.occ.set(b);
            self.near_len += 1;
        } else if tick2 <= self.epoch + NUM_BUCKETS {
            // The next 2048 epochs map to distinct level-2 buckets, so the
            // wrapped index uniquely identifies the epoch.
            let b = (tick2 & BUCKET_MASK) as usize;
            self.l2_buckets[b].push(s);
            self.l2_occ.set(b);
            self.l2_len += 1;
        } else {
            self.overflow.push(s);
        }
    }

    /// Move overflow events that now fall inside the level-2 horizon into
    /// their wheel buckets. Called whenever `epoch` advances.
    fn pull_overflow(&mut self) {
        while let Some(peek) = self.overflow.peek() {
            let tick = peek.at.0 >> BUCKET_SHIFT;
            let tick2 = tick >> LEVEL_SHIFT;
            if tick2 > self.epoch + NUM_BUCKETS {
                break;
            }
            let s = self.overflow.pop().expect("peeked");
            if tick2 == self.epoch {
                let b = (tick & BUCKET_MASK) as usize;
                self.buckets[b].push(s);
                self.occ.set(b);
                self.near_len += 1;
            } else {
                let b = (tick2 & BUCKET_MASK) as usize;
                self.l2_buckets[b].push(s);
                self.l2_occ.set(b);
                self.l2_len += 1;
            }
        }
    }

    /// Enter epoch `tick2`: move the cursor there and scatter that epoch's
    /// level-2 bucket into the level-1 wheel, then top up level 2 from the
    /// overflow heap. Each far event is touched exactly once here over its
    /// lifetime.
    fn enter_epoch(&mut self, tick2: u64) {
        debug_assert!(tick2 > self.epoch);
        self.epoch = tick2;
        self.cur_tick = tick2 << LEVEL_SHIFT;
        let b2 = (tick2 & BUCKET_MASK) as usize;
        if !self.l2_buckets[b2].is_empty() {
            // Everything in this bucket belongs to the epoch being entered
            // (the wrapped index is unique across the level-2 window).
            self.l2_len -= self.l2_buckets[b2].len();
            self.l2_occ.clear(b2);
            let mut moved = std::mem::take(&mut self.l2_buckets[b2]);
            for s in moved.drain(..) {
                let b = ((s.at.0 >> BUCKET_SHIFT) & BUCKET_MASK) as usize;
                self.buckets[b].push(s);
                self.occ.set(b);
                self.near_len += 1;
            }
            // Hand the spine allocation back so re-entering a hot epoch
            // does not re-grow from zero.
            self.l2_buckets[b2] = moved;
        }
        self.pull_overflow();
    }

    /// Extract the earliest pending event from the wheel/overflow, leaving
    /// the cursor on its tick.
    fn find_next(&mut self) -> Option<Scheduled> {
        loop {
            // Merge events that landed in the current bucket since the last
            // drain (e.g. a handler scheduling a delay-0 follow-up); the
            // drain heap orders them by (at, seq).
            let b = (self.cur_tick & BUCKET_MASK) as usize;
            if !self.buckets[b].is_empty() {
                if self.drain.is_empty() && self.buckets[b].len() == 1 {
                    // Overwhelmingly common on sparse schedules: one event
                    // at this tick, nothing mid-drain — skip the heap.
                    let s = self.buckets[b].pop().expect("len checked");
                    self.occ.clear(b);
                    self.near_len -= 1;
                    return Some(s);
                }
                self.near_len -= self.buckets[b].len();
                self.drain.extend(self.buckets[b].drain(..));
                self.occ.clear(b);
            }
            if let Some(s) = self.drain.pop() {
                return Some(s);
            }
            if self.near_len > 0 {
                // Jump to the next occupied level-1 bucket. Level 1 only
                // ever holds ticks of the current epoch at or ahead of the
                // cursor, so the delta never runs past the epoch's end.
                let d = self
                    .occ
                    .next_occupied_delta(b)
                    .expect("near_len > 0 implies an occupied bucket");
                debug_assert!(d > 0, "current bucket was just drained");
                self.cur_tick += d;
                debug_assert_eq!(self.cur_tick >> LEVEL_SHIFT, self.epoch);
            } else if self.l2_len > 0 {
                // Level 1 exhausted: jump to the next occupied epoch.
                let start2 = ((self.epoch + 1) & BUCKET_MASK) as usize;
                let d2 = self
                    .l2_occ
                    .next_occupied_delta(start2)
                    .expect("l2_len > 0 implies an occupied epoch");
                self.enter_epoch(self.epoch + 1 + d2);
            } else if let Some(peek) = self.overflow.peek() {
                // Both wheel levels empty: jump the cursor straight to the
                // overflow's first epoch and pull the next horizon in.
                self.enter_epoch(peek.at.0 >> (BUCKET_SHIFT + LEVEL_SHIFT));
            } else {
                return None;
            }
        }
    }

    /// Pop the earliest event, advancing the clock to it.
    #[inline]
    pub fn pop(&mut self) -> Option<(Nanos, EventKind)> {
        let s = self.next.take()?;
        debug_assert!(s.at >= self.now);
        self.now = s.at;
        self.popped += 1;
        self.len -= 1;
        self.next = self.find_next();
        Some((s.at, s.kind))
    }

    /// Peek at the next event time without popping.
    #[inline]
    pub fn peek_time(&self) -> Option<Nanos> {
        self.next.as_ref().map(|s| s.at)
    }
}

/// The original `BinaryHeap`-backed queue, kept as the benchmark baseline
/// and as an ordering oracle for equivalence tests: [`EventQueue`] must pop
/// the exact same `(time, seq)` sequence.
#[derive(Debug, Default)]
pub struct HeapQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
    now: Nanos,
    popped: u64,
}

impl HeapQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn now(&self) -> Nanos {
        self.now
    }

    pub fn processed(&self) -> u64 {
        self.popped
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn schedule(&mut self, at: Nanos, kind: EventKind) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, kind });
    }

    pub fn pop(&mut self) -> Option<(Nanos, EventKind)> {
        let s = self.heap.pop()?;
        self.now = s.at;
        self.popped += 1;
        Some((s.at, s.kind))
    }

    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|s| s.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn kick(n: u32) -> EventKind {
        EventKind::PortKick {
            node: NodeId(n),
            port: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(30), kick(3));
        q.schedule(Nanos(10), kick(1));
        q.schedule(Nanos(20), kick(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.0).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for n in 0..100 {
            q.schedule(Nanos(5), kick(n));
        }
        let mut seen = Vec::new();
        while let Some((_, EventKind::PortKick { node, .. })) = q.pop() {
            seen.push(node.0);
        }
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    /// The satellite bug-guard: equal-timestamp pop order equals insertion
    /// order even when the tied events straddle the drain/bucket/overflow
    /// structures of the wheel (scheduled before and after intervening
    /// pops, and beyond the wheel horizon).
    #[test]
    fn ties_survive_wheel_structures() {
        let mut q = EventQueue::new();
        let far = (NUM_BUCKETS + 7) << BUCKET_SHIFT; // beyond the horizon
        q.schedule(Nanos(far), kick(0)); // overflow
        q.schedule(Nanos(far), kick(1)); // overflow, same instant
        q.schedule(Nanos(100), kick(2)); // near
        q.schedule(Nanos(100), kick(3));
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (Nanos(100), kick(2)));
        // Same-instant event scheduled *after* a pop at that instant still
        // fires after the earlier-scheduled tie.
        q.schedule(Nanos(100), kick(4));
        q.schedule(Nanos(far), kick(5));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                EventKind::PortKick { node, .. } => node.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![3, 4, 0, 1, 5]);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(10), kick(0));
        q.schedule(Nanos(10), kick(1));
        q.schedule(Nanos(25), kick(2));
        assert_eq!(q.now(), Nanos::ZERO);
        q.pop();
        assert_eq!(q.now(), Nanos(10));
        q.pop();
        assert_eq!(q.now(), Nanos(10));
        q.pop();
        assert_eq!(q.now(), Nanos(25));
        assert!(q.pop().is_none());
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(100), kick(0));
        q.pop();
        q.schedule_in(Nanos(5), kick(1));
        assert_eq!(q.peek_time(), Some(Nanos(105)));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(100), kick(0));
        q.pop();
        q.schedule(Nanos(50), kick(1));
    }

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        let mut q = EventQueue::new();
        let horizon = NUM_BUCKETS << BUCKET_SHIFT;
        // One event per decade across five horizons, scheduled shuffled.
        let times = [horizon * 4 + 3, 17, horizon + 1, horizon * 2, 5000, 42];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Nanos(t), kick(i as u32));
        }
        assert_eq!(q.len(), times.len());
        let mut sorted = times;
        sorted.sort_unstable();
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.0).collect();
        assert_eq!(popped, sorted.to_vec());
        assert!(q.is_empty());
    }

    #[test]
    fn same_bucket_insertion_while_draining_pops_in_order() {
        let mut q = EventQueue::new();
        // Two events in one bucket; after popping the first, schedule a
        // third between the two — it must pop before the second.
        q.schedule(Nanos(10), kick(0));
        q.schedule(Nanos(40), kick(2));
        assert_eq!(q.pop().unwrap().0, Nanos(10));
        q.schedule(Nanos(20), kick(1));
        assert_eq!(q.pop().unwrap().0, Nanos(20));
        assert_eq!(q.pop().unwrap().0, Nanos(40));
    }

    #[test]
    fn packet_pool_recycles_slots() {
        use crate::ids::FlowKey;
        use crate::packet::PfcFrame;
        let mut q = EventQueue::new();
        let key = FlowKey::roce(NodeId(0), NodeId(1), 1);
        let _ = key;
        q.schedule_arrive(Nanos(10), NodeId(1), 0, Packet::Pfc(PfcFrame::pause(0)));
        let (_, ev) = q.pop().unwrap();
        let EventKind::Arrive { packet, .. } = ev else {
            panic!("expected arrive")
        };
        assert!(matches!(q.packet(packet), Packet::Pfc(f) if f.is_pause()));
        let taken = q.take_packet(packet);
        assert!(matches!(taken, Packet::Pfc(_)));
        // The freed slot is reused by the next allocation.
        q.schedule_arrive(Nanos(20), NodeId(1), 0, Packet::Pfc(PfcFrame::resume(0)));
        let (_, ev) = q.pop().unwrap();
        let EventKind::Arrive { packet: p2, .. } = ev else {
            panic!("expected arrive")
        };
        assert_eq!(p2, packet, "free list must recycle the slot");
        assert!(matches!(q.take_packet(p2), Packet::Pfc(f) if !f.is_pause()));
    }

    /// The wheel must be indistinguishable from the heap baseline on a
    /// randomized interleaved schedule/pop workload mixing near and far
    /// timestamps (the exact (time, seq-implied) pop sequence matches).
    #[test]
    fn wheel_matches_heap_oracle() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut wheel = EventQueue::new();
        let mut heap = HeapQueue::new();
        let mut pending = 0u32;
        let mut id = 0u32;
        for _ in 0..5_000 {
            let do_pop = pending > 0 && rng.gen_range(0..3usize) == 0;
            if do_pop {
                let a = wheel.pop().unwrap();
                let b = heap.pop().unwrap();
                assert_eq!(a, b, "pop divergence after {} events", id);
                pending -= 1;
            } else {
                let base = wheel.now().0.max(heap.now().0);
                let delta = match rng.gen_range(0..4usize) {
                    0 => rng.gen_range(0..64u64),        // same/near bucket
                    1 => rng.gen_range(0..5_000u64),     // near wheel
                    2 => rng.gen_range(0..600_000u64),   // around horizon
                    _ => rng.gen_range(0..5_000_000u64), // deep overflow
                };
                let ev = kick(id);
                id += 1;
                wheel.schedule(Nanos(base + delta), ev);
                heap.schedule(Nanos(base + delta), ev);
                pending += 1;
            }
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(wheel.processed(), heap.processed());
    }
}
