//! Deterministic, seed-driven fault injection for the monitoring control
//! plane.
//!
//! Hawkeye's control plane is best-effort end to end: polling packets ride
//! the data plane through congested (even PFC-paused) ports, and telemetry
//! reaches the collector via switch-CPU uploads that can be dropped,
//! delayed, truncated or stale. A [`FaultPlan`] describes which of those
//! failures to inject and at what rates; every decision is drawn from a
//! dedicated [`FaultRng`] stream seeded from `(plan.seed, stream id)`, so a
//! given `(seed, plan)` pair replays the exact same failure sequence — each
//! observed failure is a reproducible test case.
//!
//! Two layers consume the plan:
//!
//! - the simulator applies the *probe-path* faults (drop / delay / duplicate
//!   of polling packets, per switch hop) while dispatching `Arrive` events;
//! - the collector (in `hawkeye-core`) applies the *upload-path* faults
//!   (upload loss and delay, stale or truncated snapshots, corrupted
//!   causality-meter entries) plus the switch-CPU kill/flap window.
//!
//! [`FaultPlan::none()`] — the default — takes **zero** behavior-affecting
//! branches: the injector is consulted only when the plan is active, so a
//! fault-free run is bit-for-bit identical to a build without this module.

use crate::ids::NodeId;
use crate::time::Nanos;

/// A switch-CPU path outage: within `[down_from, down_to)` the CPU neither
/// sees mirrored probes nor uploads telemetry. With `flap_period` set the
/// outage flaps instead: alternating dead/alive half-periods (dead first),
/// modelling a wedged-then-restarted telemetry agent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuPathFault {
    /// Switch whose CPU path fails; `None` hits every switch.
    pub switch: Option<NodeId>,
    pub down_from: Nanos,
    pub down_to: Nanos,
    /// Flap with this period inside the window; `None` = hard down.
    pub flap_period: Option<Nanos>,
}

impl CpuPathFault {
    /// Is `sw`'s CPU path dead at `now` under this fault?
    pub fn is_down(&self, sw: NodeId, now: Nanos) -> bool {
        if self.switch.is_some_and(|s| s != sw) {
            return false;
        }
        if now < self.down_from || now >= self.down_to {
            return false;
        }
        match self.flap_period {
            None => true,
            Some(p) if p.0 == 0 => true,
            Some(p) => {
                // Dead for the first half-period of each cycle, alive for
                // the second — purely a function of (now, plan): replayable.
                let phase = (now.0 - self.down_from.0) % p.0;
                phase < p.0 / 2
            }
        }
    }
}

/// Fault rates and windows for one run. All probabilities are per-event
/// (per probe hop, per upload, per meter entry) in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault decision streams. Independent from
    /// `SimConfig::seed` so the same traffic can be replayed under
    /// different fault draws (and vice versa).
    pub seed: u64,
    /// Per-hop probability that a polling packet is dropped on arrival at
    /// a switch (congestion loss on the probe's own path).
    pub probe_drop: f64,
    /// Per-hop probability that a polling packet is held for a uniform
    /// `1..=probe_delay_max` ns before re-arriving — this also *reorders*
    /// probes relative to each other and to data.
    pub probe_delay: f64,
    pub probe_delay_max: Nanos,
    /// Per-hop probability that a polling packet arrival is duplicated
    /// (the copy re-arrives after a short jitter).
    pub probe_duplicate: f64,
    /// Probability a switch-CPU telemetry upload is lost entirely.
    pub upload_drop: f64,
    /// Probability an upload is delayed by a uniform
    /// `1..=upload_delay_max` ns; uploads arriving past the collector's
    /// per-switch deadline are discarded as late.
    pub upload_delay: f64,
    pub upload_delay_max: Nanos,
    /// Probability a delivered snapshot is stale: its newest epoch is
    /// missing (the CPU read raced the telemetry ring).
    pub snapshot_stale: f64,
    /// Probability a delivered snapshot is truncated (flow rows cut, as if
    /// the upload was cut short mid-transfer).
    pub snapshot_truncate: f64,
    /// Per-entry probability that a causality-meter record in a delivered
    /// snapshot is corrupted (zeroed volume).
    pub meter_corrupt: f64,
    /// Optional switch-CPU kill/flap window.
    pub cpu_fault: Option<CpuPathFault>,
}

impl FaultPlan {
    /// The fault-free plan: every rate zero, no CPU fault. Runs under this
    /// plan are bit-for-bit identical to runs without fault injection.
    pub const fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            probe_drop: 0.0,
            probe_delay: 0.0,
            probe_delay_max: Nanos(0),
            probe_duplicate: 0.0,
            upload_drop: 0.0,
            upload_delay: 0.0,
            upload_delay_max: Nanos(0),
            snapshot_stale: 0.0,
            snapshot_truncate: 0.0,
            meter_corrupt: 0.0,
            cpu_fault: None,
        }
    }

    /// True if no fault can ever fire under this plan.
    pub fn is_none(&self) -> bool {
        self.probe_drop <= 0.0
            && self.probe_delay <= 0.0
            && self.probe_duplicate <= 0.0
            && self.upload_drop <= 0.0
            && self.upload_delay <= 0.0
            && self.snapshot_stale <= 0.0
            && self.snapshot_truncate <= 0.0
            && self.meter_corrupt <= 0.0
            && self.cpu_fault.is_none()
    }

    /// True if any probe-path fault can fire (the simulator's fast-path
    /// gate: when false, dispatch never consults the injector).
    pub fn probe_faults_active(&self) -> bool {
        self.probe_drop > 0.0 || self.probe_delay > 0.0 || self.probe_duplicate > 0.0
    }

    /// True if any upload-path fault can fire (the collector's gate).
    pub fn upload_faults_active(&self) -> bool {
        self.upload_drop > 0.0
            || self.upload_delay > 0.0
            || self.snapshot_stale > 0.0
            || self.snapshot_truncate > 0.0
            || self.meter_corrupt > 0.0
            || self.cpu_fault.is_some()
    }

    /// Is `sw`'s CPU path dead at `now`?
    pub fn cpu_down(&self, sw: NodeId, now: Nanos) -> bool {
        self.cpu_fault.is_some_and(|f| f.is_down(sw, now))
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Counters for every fault actually injected (as opposed to the plan's
/// *rates*). Folded into the metrics registry by the eval runner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub probes_dropped: u64,
    pub probes_delayed: u64,
    pub probes_duplicated: u64,
    pub uploads_dropped: u64,
    pub uploads_delayed: u64,
    pub snapshots_stale: u64,
    pub snapshots_truncated: u64,
    pub meters_corrupted: u64,
    /// Uploads suppressed because the switch's CPU path was dead.
    pub cpu_down_drops: u64,
}

impl FaultStats {
    /// Total individual faults injected, across every category.
    pub fn total_injected(&self) -> u64 {
        self.probes_dropped
            + self.probes_delayed
            + self.probes_duplicated
            + self.uploads_dropped
            + self.uploads_delayed
            + self.snapshots_stale
            + self.snapshots_truncated
            + self.meters_corrupted
            + self.cpu_down_drops
    }
}

/// Stream identifiers: each consumer of the plan owns a disjoint stream so
/// adding a draw in one layer never perturbs another layer's sequence.
pub const STREAM_PROBE: u64 = 0x50_52_4f_42; // "PROB"
pub const STREAM_UPLOAD: u64 = 0x55_50_4c_44; // "UPLD"

/// xorshift64* generator seeded through a splitmix64 mix of
/// `(seed, stream)` — the same family the switches use for ECN marking,
/// but on an independent stream so fault draws never perturb the traffic.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    pub fn new(seed: u64, stream: u64) -> FaultRng {
        // splitmix64 finalizer over the combined seed; never zero.
        let mut z = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(stream)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        FaultRng { state: z | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw. `p <= 0` consumes no randomness so a knob set to
    /// zero never perturbs the other knobs' streams.
    pub fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }

    /// Uniform delay in `1..=max` ns (0 if `max` is 0).
    pub fn delay(&mut self, max: Nanos) -> Nanos {
        if max.0 == 0 {
            return Nanos(0);
        }
        Nanos(1 + self.next_u64() % max.0)
    }
}

/// What the injector decided for one probe arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeFate {
    /// Deliver normally.
    Deliver,
    /// Lost at this hop.
    Drop,
    /// Re-arrives after this extra delay (a delayed probe is re-examined
    /// on re-arrival, so long delay chains decay geometrically).
    Delay(Nanos),
    /// Delivered now, plus a duplicate re-arriving after this jitter.
    Duplicate(Nanos),
}

/// Simulator-side injector: owns the probe-path decision stream and the
/// probe-path counters. One per simulation; single-threaded by construction
/// (parallelism in the eval harness is across whole trials).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    pub plan: FaultPlan,
    rng: FaultRng,
    pub stats: FaultStats,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan,
            rng: FaultRng::new(plan.seed, STREAM_PROBE),
            stats: FaultStats::default(),
        }
    }

    /// Does dispatch need to consult [`Self::probe_arrival`] at all?
    #[inline]
    pub fn probes_active(&self) -> bool {
        self.plan.probe_faults_active()
    }

    /// Decide the fate of one polling packet arriving at a switch. Order of
    /// draws is fixed (drop, then delay, then duplicate) so each knob has a
    /// stable stream position.
    pub fn probe_arrival(&mut self) -> ProbeFate {
        if self.rng.chance(self.plan.probe_drop) {
            self.stats.probes_dropped += 1;
            return ProbeFate::Drop;
        }
        if self.rng.chance(self.plan.probe_delay) {
            self.stats.probes_delayed += 1;
            return ProbeFate::Delay(self.rng.delay(self.plan.probe_delay_max));
        }
        if self.rng.chance(self.plan.probe_duplicate) {
            self.stats.probes_duplicated += 1;
            // Duplicates trail closely: jitter within a sixteenth of the
            // delay bound (min 64 ns) keeps them in the same epoch.
            let max = Nanos((self.plan.probe_delay_max.0 / 16).max(64));
            return ProbeFate::Duplicate(self.rng.delay(max));
        }
        ProbeFate::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_inactive_everywhere() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert!(!p.probe_faults_active());
        assert!(!p.upload_faults_active());
        assert!(!p.cpu_down(NodeId(0), Nanos(123)));
        assert_eq!(FaultPlan::default(), p);
    }

    #[test]
    fn rng_streams_are_deterministic_and_disjoint() {
        let mut a = FaultRng::new(7, STREAM_PROBE);
        let mut b = FaultRng::new(7, STREAM_PROBE);
        let mut c = FaultRng::new(7, STREAM_UPLOAD);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys, "same (seed, stream) must replay");
        assert_ne!(xs, zs, "streams must be independent");
    }

    #[test]
    fn zero_probability_consumes_no_draws() {
        let mut a = FaultRng::new(3, STREAM_PROBE);
        let mut b = FaultRng::new(3, STREAM_PROBE);
        assert!(!a.chance(0.0));
        assert!(!a.chance(-1.0));
        // `a` drew nothing: both streams stay aligned.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn injector_replays_identically() {
        let plan = FaultPlan {
            seed: 42,
            probe_drop: 0.3,
            probe_delay: 0.3,
            probe_delay_max: Nanos(1000),
            probe_duplicate: 0.2,
            ..FaultPlan::none()
        };
        let run = || {
            let mut inj = FaultInjector::new(plan);
            let fates: Vec<ProbeFate> = (0..256).map(|_| inj.probe_arrival()).collect();
            (fates, inj.stats)
        };
        assert_eq!(run(), run());
        let (fates, stats) = run();
        assert!(fates.contains(&ProbeFate::Drop));
        assert!(fates.iter().any(|f| matches!(f, ProbeFate::Delay(_))));
        assert!(stats.probes_dropped > 0 && stats.total_injected() > 0);
    }

    #[test]
    fn cpu_fault_windows_and_flap() {
        let hard = CpuPathFault {
            switch: Some(NodeId(4)),
            down_from: Nanos(100),
            down_to: Nanos(200),
            flap_period: None,
        };
        assert!(!hard.is_down(NodeId(4), Nanos(99)));
        assert!(hard.is_down(NodeId(4), Nanos(100)));
        assert!(hard.is_down(NodeId(4), Nanos(199)));
        assert!(!hard.is_down(NodeId(4), Nanos(200)));
        assert!(!hard.is_down(NodeId(5), Nanos(150)), "scoped to one switch");

        let flap = CpuPathFault {
            switch: None,
            down_from: Nanos(0),
            down_to: Nanos(1000),
            flap_period: Some(Nanos(100)),
        };
        assert!(flap.is_down(NodeId(0), Nanos(10)), "first half dead");
        assert!(!flap.is_down(NodeId(0), Nanos(60)), "second half alive");
        assert!(flap.is_down(NodeId(9), Nanos(110)), "applies to any switch");
    }
}
