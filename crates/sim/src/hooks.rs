//! Instrumentation interface between the simulated switches and a telemetry
//! / diagnosis system (Hawkeye or a baseline).
//!
//! The simulator provides *mechanism* — callbacks at enqueue time, on PFC
//! frame receipt, and on polling-packet (probe) arrival, plus a read-only
//! [`SwitchView`] of switch configuration — while the monitoring system
//! provides *policy* (what to record, where to forward probes). This mirrors
//! the paper's split between the Tofino forwarding pipeline and the P4
//! Hawkeye program layered onto it.

use crate::ids::{FlowId, FlowKey, NodeId, PortId};
use crate::packet::Probe;
use crate::time::Nanos;
use crate::topology::Topology;

/// Everything a monitoring system may observe about one data packet being
/// enqueued at an egress queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnqueueRecord {
    pub switch: NodeId,
    /// Ingress port the packet arrived on.
    pub in_port: u8,
    /// Egress port the packet was enqueued to.
    pub out_port: u8,
    pub flow: FlowId,
    pub key: FlowKey,
    /// Wire size in bytes.
    pub size: u32,
    /// Number of data packets already queued ahead of this one at the
    /// egress queue (the paper's `qdepth(pkt)`).
    pub qdepth_pkts: u32,
    /// Bytes queued ahead of this packet at the egress queue.
    pub qdepth_bytes: u64,
    /// Ground-truth egress pause state at enqueue (the simulator's own
    /// pause timer). Hawkeye maintains its *own* PFC status register from
    /// `on_pfc_frame` and must not rely on this field; it exists for
    /// baselines and for cross-checking the register logic in tests.
    pub egress_paused: bool,
    /// The switch-local 48-bit nanosecond enqueue timestamp.
    pub timestamp: Nanos,
}

/// A PFC frame observed at a switch port (after the MAC filter is disabled,
/// §3.6 "Enable PFC awareness for P4").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfcEvent {
    pub switch: NodeId,
    /// Port the frame arrived on — also the egress port it pauses.
    pub port: u8,
    pub class: u8,
    /// True for PAUSE, false for RESUME.
    pub pause: bool,
    /// Pause duration implied by the quanta at this port's line rate.
    pub pause_time: Nanos,
    pub now: Nanos,
}

/// What a switch does with an arriving probe (polling packet).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProbeDecision {
    /// Copies to emit, each out of a given egress port (control class).
    pub emit: Vec<(u8, Probe)>,
    /// Whether to mirror the probe to the switch CPU, triggering
    /// asynchronous telemetry collection (§3.4).
    pub mirror_to_cpu: bool,
}

/// Read-only switch-local context handed to `on_probe`.
///
/// Everything here is information a real switch's control/data plane has:
/// its own routing table, port count, and which ports face hosts.
pub struct SwitchView<'a> {
    pub(crate) topo: &'a Topology,
    pub(crate) switch: NodeId,
}

impl<'a> SwitchView<'a> {
    pub fn switch(&self) -> NodeId {
        self.switch
    }

    /// Number of ports on this switch.
    pub fn port_count(&self) -> u8 {
        self.topo.ports(self.switch).len() as u8
    }

    /// Next-hop egress port for a flow (the victim 5-tuple in the probe).
    pub fn route_port(&self, flow: &FlowKey) -> Option<u8> {
        self.topo.route_port(self.switch, flow)
    }

    /// Whether `port` attaches directly to a host.
    pub fn is_host_facing(&self, port: u8) -> bool {
        self.topo.is_host_facing(PortId::new(self.switch, port))
    }

    /// Whether the peer of `port` is the destination host of `flow`.
    pub fn is_last_hop(&self, flow: &FlowKey, port: u8) -> bool {
        self.topo.peer(PortId::new(self.switch, port)).node == flow.dst
    }
}

/// A probe mirrored to a switch CPU: the trigger for controller-assisted
/// telemetry collection. The simulator records these; the experiment
/// harness replays them into the collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuNotification {
    pub switch: NodeId,
    pub probe: Probe,
    pub at: Nanos,
}

/// Monitoring-system policy callbacks, invoked synchronously by the
/// simulator. One implementation instance serves the whole network (it is
/// keyed by `switch` in every call), which keeps experiment plumbing simple
/// while preserving per-switch state separation inside the implementation.
pub trait SwitchHook {
    /// A data packet was enqueued at an egress queue.
    fn on_data_enqueue(&mut self, rec: &EnqueueRecord);

    /// A PFC frame arrived at a port.
    fn on_pfc_frame(&mut self, ev: &PfcEvent);

    /// A probe (polling packet) arrived at `in_port`; decide where it goes.
    fn on_probe(
        &mut self,
        switch: NodeId,
        in_port: u8,
        probe: Probe,
        view: &SwitchView<'_>,
        now: Nanos,
    ) -> ProbeDecision;
}

/// A no-op hook: an uninstrumented network.
#[derive(Debug, Default, Clone)]
pub struct NullHook;

impl SwitchHook for NullHook {
    fn on_data_enqueue(&mut self, _rec: &EnqueueRecord) {}
    fn on_pfc_frame(&mut self, _ev: &PfcEvent) {}
    fn on_probe(
        &mut self,
        _switch: NodeId,
        _in_port: u8,
        _probe: Probe,
        _view: &SwitchView<'_>,
        _now: Nanos,
    ) -> ProbeDecision {
        ProbeDecision::default()
    }
}
