//! RDMA host (NIC + application) model.
//!
//! The sender side paces each flow at its DCQCN rate and honors PFC pause on
//! its uplink; the receiver side generates ACKs (echoing send timestamps for
//! RTT measurement) and DCQCN CNPs for ECN-marked arrivals. A host may also
//! run the Hawkeye *detection agent* (§3.4): it watches per-flow RTT — both
//! measured from ACKs and implied by stalled in-flight packets — and injects
//! a polling packet when the RTT crosses the configured threshold.
//!
//! Fault model: a host can be configured as a *PFC injector* (buggy NIC /
//! slow receiver, §2.1), continuously sending PAUSE frames to its ToR.

use crate::dcqcn::{Dcqcn, DcqcnConfig};
use crate::event::{EventKind, EventQueue};
use crate::ids::{FlowId, FlowKey, NodeId};
use crate::packet::{
    AckPacket, CnpPacket, DataPacket, Packet, PfcFrame, Probe, CLASS_DATA, DATA_PAYLOAD,
    DATA_PKT_SIZE,
};
use crate::time::Nanos;
use crate::topology::Topology;
use std::collections::{HashMap, VecDeque};

/// Detection-agent configuration (per host).
#[derive(Debug, Clone, Copy)]
pub struct AgentConfig {
    /// Anomaly threshold as a multiple of `base_rtt` (the paper sweeps
    /// 200%–500%, i.e. 2.0–5.0).
    pub rtt_threshold_factor: f64,
    /// The network's reference (maximum unloaded) RTT.
    pub base_rtt: Nanos,
    /// How often stalled-flow checks run.
    pub check_interval: Nanos,
    /// Minimum spacing between polling packets for the same flow (§3.4:
    /// duplicate-detection suppression).
    pub dedup_interval: Nanos,
    /// Pingmesh-style periodic diagnosis (§5 "when integrated with
    /// pingmesh-like probes, HAWKEYE can carry out periodic diagnosis"):
    /// when set, every agent check also emits a polling packet for each
    /// active flow at this interval, regardless of its RTT.
    pub periodic_probe: Option<Nanos>,
    /// Probe timeout + bounded exponential-backoff re-poll: polling packets
    /// ride the (lossy, congested) data plane, so a detection whose probe
    /// is lost would otherwise never be diagnosed. `None` (the default)
    /// disables re-polling; the fault-free pipeline is unchanged.
    pub retry: Option<ProbeRetryConfig>,
}

/// Re-poll schedule after a detection: attempt `k` (1-based) fires
/// `timeout * backoff^(k-1)` after the previous probe, while the flow still
/// looks anomalous, up to `max_attempts` re-polls and never past `deadline`
/// from the triggering detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeRetryConfig {
    /// Re-polls after the initial probe (0 disables).
    pub max_attempts: u32,
    /// Wait before the first re-poll.
    pub timeout: Nanos,
    /// Backoff multiplier between consecutive re-polls.
    pub backoff: u32,
    /// Hard bound on the whole ladder, measured from the detection.
    pub deadline: Nanos,
}

impl Default for ProbeRetryConfig {
    fn default() -> Self {
        ProbeRetryConfig {
            max_attempts: 3,
            timeout: Nanos::from_micros(100),
            backoff: 2,
            deadline: Nanos::from_millis(1),
        }
    }
}

impl AgentConfig {
    pub fn threshold(&self) -> Nanos {
        Nanos((self.base_rtt.as_nanos() as f64 * self.rtt_threshold_factor) as u64)
    }
}

/// Continuous host PFC injection fault (PFC storm root cause).
#[derive(Debug, Clone, Copy)]
pub struct PfcInjectorConfig {
    pub start: Nanos,
    pub stop: Nanos,
    /// PAUSE re-send period; below the quanta expiry keeps the link
    /// continuously dead.
    pub period: Nanos,
}

/// Host configuration.
#[derive(Debug, Clone, Copy)]
pub struct HostConfig {
    /// Minimum gap between CNPs per flow (DCQCN notification point).
    pub cnp_interval: Nanos,
    pub dcqcn: DcqcnConfig,
    pub agent: Option<AgentConfig>,
    pub pfc_injector: Option<PfcInjectorConfig>,
}

impl HostConfig {
    pub fn for_line_rate(bps: f64) -> Self {
        HostConfig {
            cnp_interval: Nanos::from_micros(50),
            dcqcn: DcqcnConfig::for_line_rate(bps),
            agent: None,
            pfc_injector: None,
        }
    }
}

/// An anomaly detection produced by the agent (the trigger for diagnosis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Detection {
    pub flow: FlowId,
    pub key: FlowKey,
    pub at: Nanos,
    pub observed_rtt: Nanos,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlowState {
    Pending,
    Active,
    Done,
}

/// Sender-side state of one flow.
#[derive(Debug)]
pub struct HostFlow {
    pub id: FlowId,
    pub key: FlowKey,
    pub size_bytes: u64,
    pub start: Nanos,
    total_pkts: u64,
    next_seq: u64,
    acked_pkts: u64,
    state: FlowState,
    dcqcn: Dcqcn,
    /// Optional application-level pacing cap (bits/s); the effective send
    /// rate is min(DCQCN rate, cap). Used by scenarios that need sub-line
    /// steady flows (e.g. cyclic-buffer-dependency setups).
    max_rate: Option<f64>,
    /// Congestion-control compliance: a non-compliant flow (buggy or
    /// adversarial NIC, cf. "RDMA congestion control: it is only for the
    /// compliant") ignores CNPs entirely.
    cc_enabled: bool,
    timers_running: bool,
    outstanding: VecDeque<(u64, Nanos)>,
    pub last_rtt: Nanos,
    pub completed_at: Option<Nanos>,
    last_probe_at: Nanos,
    /// Detection time anchoring the current re-poll ladder.
    retry_anchor: Nanos,
}

impl HostFlow {
    pub fn fct(&self) -> Option<Nanos> {
        self.completed_at.map(|c| c.saturating_sub(self.start))
    }
    pub fn is_done(&self) -> bool {
        self.state == FlowState::Done
    }
    pub fn current_rate_gbps(&self) -> f64 {
        self.dcqcn.rate().gbps()
    }
}

#[derive(Debug, Default)]
struct RecvState {
    next_cnp_ok: Nanos,
    rx_pkts: u64,
}

/// Aggregate per-host counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct HostStats {
    pub data_sent: u64,
    pub data_rcvd: u64,
    pub acks_sent: u64,
    pub cnps_sent: u64,
    pub cnps_rcvd: u64,
    pub pfc_pause_rcvd: u64,
    pub pfc_injected: u64,
    pub probes_sent: u64,
    /// Probes re-sent by the timeout/backoff ladder (subset of
    /// `probes_sent`).
    pub probes_retried: u64,
}

/// Runtime state of one host.
#[derive(Debug)]
pub struct HostState {
    pub id: NodeId,
    cfg: HostConfig,
    flows: Vec<HostFlow>,
    by_flow_id: HashMap<FlowId, u32>,
    recv: HashMap<FlowId, RecvState>,
    ready: VecDeque<u32>,
    ctrl: VecDeque<Packet>,
    busy: bool,
    pause_until: Nanos,
    pub stats: HostStats,
    pub detections: Vec<Detection>,
}

impl HostState {
    pub fn new(id: NodeId, cfg: HostConfig) -> Self {
        HostState {
            id,
            cfg,
            flows: Vec::new(),
            by_flow_id: HashMap::new(),
            recv: HashMap::new(),
            ready: VecDeque::new(),
            ctrl: VecDeque::new(),
            busy: false,
            pause_until: Nanos::ZERO,
            stats: HostStats::default(),
            detections: Vec::new(),
        }
    }

    /// Register a flow sourced at this host; returns the local index used in
    /// pacing events. Called during simulation setup.
    pub fn add_flow(&mut self, id: FlowId, key: FlowKey, size_bytes: u64, start: Nanos) -> u32 {
        self.add_flow_limited(id, key, size_bytes, start, None)
    }

    /// [`HostState::add_flow`] with an application-level rate cap (bits/s).
    pub fn add_flow_limited(
        &mut self,
        id: FlowId,
        key: FlowKey,
        size_bytes: u64,
        start: Nanos,
        max_rate_bps: Option<f64>,
    ) -> u32 {
        self.add_flow_full(id, key, size_bytes, start, max_rate_bps, true)
    }

    /// [`HostState::add_flow`] with a rate cap and a congestion-control
    /// compliance flag.
    #[allow(clippy::too_many_arguments)]
    pub fn add_flow_full(
        &mut self,
        id: FlowId,
        key: FlowKey,
        size_bytes: u64,
        start: Nanos,
        max_rate_bps: Option<f64>,
        cc_enabled: bool,
    ) -> u32 {
        let idx = self.flows.len() as u32;
        let total_pkts = size_bytes.div_ceil(DATA_PAYLOAD as u64).max(1);
        self.flows.push(HostFlow {
            id,
            key,
            size_bytes,
            start,
            total_pkts,
            next_seq: 0,
            acked_pkts: 0,
            state: FlowState::Pending,
            dcqcn: Dcqcn::new(self.cfg.dcqcn),
            max_rate: max_rate_bps,
            cc_enabled,
            timers_running: false,
            outstanding: VecDeque::new(),
            last_rtt: Nanos::ZERO,
            completed_at: None,
            last_probe_at: Nanos::ZERO,
            retry_anchor: Nanos::ZERO,
        });
        self.by_flow_id.insert(id, idx);
        idx
    }

    pub fn flows(&self) -> &[HostFlow] {
        &self.flows
    }

    /// Enable/disable the detection agent (before the simulation runs).
    pub fn set_agent(&mut self, agent: Option<AgentConfig>) {
        self.cfg.agent = agent;
    }

    /// Configure the PFC-injection fault (before the simulation runs).
    pub fn set_injector(&mut self, inj: Option<PfcInjectorConfig>) {
        self.cfg.pfc_injector = inj;
    }

    pub fn agent_config(&self) -> Option<AgentConfig> {
        self.cfg.agent
    }

    pub fn flow_by_id(&self, id: FlowId) -> Option<&HostFlow> {
        self.by_flow_id.get(&id).map(|&i| &self.flows[i as usize])
    }

    /// Set up the initial events for this host (flow starts, injector,
    /// agent checks). Called once by the simulator.
    pub fn bootstrap(&mut self, q: &mut EventQueue) {
        for (idx, f) in self.flows.iter().enumerate() {
            q.schedule(
                f.start,
                EventKind::FlowStart {
                    node: self.id,
                    flow_idx: idx as u32,
                },
            );
        }
        if let Some(inj) = self.cfg.pfc_injector {
            q.schedule(inj.start, EventKind::HostPfcInject { node: self.id });
        }
        if let Some(agent) = self.cfg.agent {
            if !self.flows.is_empty() {
                q.schedule(
                    agent.check_interval,
                    EventKind::AgentCheck { node: self.id },
                );
            }
        }
    }

    pub fn handle_flow_start(
        &mut self,
        flow_idx: u32,
        now: Nanos,
        q: &mut EventQueue,
        topo: &Topology,
    ) {
        let f = &mut self.flows[flow_idx as usize];
        debug_assert_eq!(f.state, FlowState::Pending);
        f.state = FlowState::Active;
        self.ready.push_back(flow_idx);
        self.try_tx(now, q, topo);
    }

    /// Pacing timer fired: the flow may transmit its next packet.
    pub fn handle_flow_ready(
        &mut self,
        flow_idx: u32,
        now: Nanos,
        q: &mut EventQueue,
        topo: &Topology,
    ) {
        let f = &self.flows[flow_idx as usize];
        if f.state != FlowState::Active || f.next_seq >= f.total_pkts {
            return;
        }
        self.ready.push_back(flow_idx);
        self.try_tx(now, q, topo);
    }

    /// Try to start transmitting on the host uplink.
    pub fn try_tx(&mut self, now: Nanos, q: &mut EventQueue, topo: &Topology) {
        if self.busy {
            return;
        }
        let info = *topo.port(crate::ids::PortId::new(self.id, 0));
        let pkt: Packet = if let Some(p) = self.ctrl.pop_front() {
            p
        } else if self.pause_until <= now {
            loop {
                let Some(idx) = self.ready.pop_front() else {
                    return;
                };
                let f = &mut self.flows[idx as usize];
                if f.state != FlowState::Active || f.next_seq >= f.total_pkts {
                    continue;
                }
                let seq = f.next_seq;
                f.next_seq += 1;
                let last = f.next_seq == f.total_pkts;
                let size = if last {
                    let rem = f.size_bytes - (f.total_pkts - 1) * DATA_PAYLOAD as u64;
                    (rem.max(1) as u32) + (DATA_PKT_SIZE - DATA_PAYLOAD)
                } else {
                    DATA_PKT_SIZE
                };
                f.outstanding.push_back((seq, now));
                f.dcqcn.on_bytes_sent(size as u64);
                // Schedule the next packet of this flow per its paced rate.
                if !last {
                    let rate = match f.max_rate {
                        Some(cap) => crate::units::Rate(f.dcqcn.rate().0.min(cap)),
                        None => f.dcqcn.rate(),
                    };
                    let gap = rate.pacing_delay(size);
                    if gap < Nanos::MAX {
                        q.schedule_in(
                            gap,
                            EventKind::FlowReady {
                                node: self.id,
                                flow_idx: idx,
                            },
                        );
                    }
                }
                self.stats.data_sent += 1;
                break Packet::Data(DataPacket {
                    flow: f.id,
                    key: f.key,
                    seq,
                    size,
                    ecn_ce: false,
                    sent_at: now,
                    last,
                });
            }
        } else {
            return;
        };

        self.busy = true;
        let tx = info.bandwidth.tx_time(pkt.size());
        q.schedule(
            now + tx,
            EventKind::PortTxDone {
                node: self.id,
                port: 0,
            },
        );
        q.schedule_arrive(now + tx + info.delay, info.peer.node, info.peer.port, pkt);
    }

    pub fn handle_tx_done(&mut self, now: Nanos, q: &mut EventQueue, topo: &Topology) {
        self.busy = false;
        self.try_tx(now, q, topo);
    }

    /// A frame arrived on the host's uplink.
    pub fn handle_arrive(&mut self, pkt: Packet, now: Nanos, q: &mut EventQueue, topo: &Topology) {
        match pkt {
            Packet::Data(d) => self.on_data_rx(d, now, q, topo),
            Packet::Ack(a) => self.on_ack_rx(a, now, q, topo),
            Packet::Cnp(c) => self.on_cnp_rx(c, now, q),
            Packet::Pfc(f) => self.on_pfc_rx(f, now, q, topo),
            Packet::Probe(_) => {
                // Polling packets terminating at a host are consumed; the
                // causality analysis already mirrored telemetry upstream.
            }
        }
    }

    fn on_data_rx(&mut self, d: DataPacket, now: Nanos, q: &mut EventQueue, topo: &Topology) {
        self.stats.data_rcvd += 1;
        let rs = self.recv.entry(d.flow).or_default();
        rs.rx_pkts += 1;
        // ACK every packet (RoCEv2 RC-style acknowledgment cadence is
        // coarser in practice, but per-packet ACKs give the agent dense RTT
        // samples, matching the PCC data-path RTT probes of §3.6).
        let ack_key = reverse_key(&d.key);
        self.ctrl.push_back(Packet::Ack(AckPacket {
            flow: d.flow,
            key: ack_key,
            seq: d.seq,
            echo_sent_at: d.sent_at,
            last: d.last,
        }));
        self.stats.acks_sent += 1;
        if d.ecn_ce && now >= rs.next_cnp_ok {
            self.recv.get_mut(&d.flow).unwrap().next_cnp_ok = now + self.cfg.cnp_interval;
            self.ctrl.push_back(Packet::Cnp(CnpPacket {
                flow: d.flow,
                key: ack_key,
            }));
            self.stats.cnps_sent += 1;
        }
        self.try_tx(now, q, topo);
    }

    fn on_ack_rx(&mut self, a: AckPacket, now: Nanos, q: &mut EventQueue, topo: &Topology) {
        let Some(&idx) = self.by_flow_id.get(&a.flow) else {
            return;
        };
        let f = &mut self.flows[idx as usize];
        f.acked_pkts += 1;
        while let Some(&(seq, _)) = f.outstanding.front() {
            if seq <= a.seq {
                f.outstanding.pop_front();
            } else {
                break;
            }
        }
        f.last_rtt = now.saturating_sub(a.echo_sent_at);
        if a.last && f.completed_at.is_none() {
            f.completed_at = Some(now);
            f.state = FlowState::Done;
        }
        // Agent: RTT-sample-driven anomaly detection.
        let rtt = f.last_rtt;
        self.maybe_detect(idx, rtt, now, q, topo);
    }

    fn on_cnp_rx(&mut self, c: CnpPacket, now: Nanos, q: &mut EventQueue) {
        self.stats.cnps_rcvd += 1;
        let Some(&idx) = self.by_flow_id.get(&c.flow) else {
            return;
        };
        let f = &mut self.flows[idx as usize];
        if !f.cc_enabled {
            return;
        }
        f.dcqcn.on_cnp();
        if !f.timers_running {
            f.timers_running = true;
            q.schedule(
                now + self.cfg.dcqcn.alpha_timer,
                EventKind::DcqcnAlpha {
                    node: self.id,
                    flow_idx: idx,
                },
            );
            q.schedule(
                now + self.cfg.dcqcn.increase_timer,
                EventKind::DcqcnIncrease {
                    node: self.id,
                    flow_idx: idx,
                },
            );
        }
    }

    fn on_pfc_rx(&mut self, f: PfcFrame, now: Nanos, q: &mut EventQueue, topo: &Topology) {
        if f.class != CLASS_DATA {
            return;
        }
        if f.is_pause() {
            self.stats.pfc_pause_rcvd += 1;
            let info = topo.port(crate::ids::PortId::new(self.id, 0));
            let dur = crate::units::quanta_to_pause_time(f.quanta, info.bandwidth);
            self.pause_until = now + dur;
            q.schedule(
                now + dur,
                EventKind::PortKick {
                    node: self.id,
                    port: 0,
                },
            );
        } else {
            self.pause_until = now;
            self.try_tx(now, q, topo);
        }
    }

    pub fn handle_dcqcn_alpha(&mut self, flow_idx: u32, now: Nanos, q: &mut EventQueue) {
        let f = &mut self.flows[flow_idx as usize];
        if f.state == FlowState::Done {
            f.timers_running = false;
            return;
        }
        f.dcqcn.on_alpha_timer();
        q.schedule(
            now + self.cfg.dcqcn.alpha_timer,
            EventKind::DcqcnAlpha {
                node: self.id,
                flow_idx,
            },
        );
    }

    pub fn handle_dcqcn_increase(&mut self, flow_idx: u32, now: Nanos, q: &mut EventQueue) {
        let f = &mut self.flows[flow_idx as usize];
        if f.state == FlowState::Done {
            return;
        }
        f.dcqcn.on_increase_timer();
        q.schedule(
            now + self.cfg.dcqcn.increase_timer,
            EventKind::DcqcnIncrease {
                node: self.id,
                flow_idx,
            },
        );
    }

    /// Faulty-host PFC injection tick.
    pub fn handle_pfc_inject(&mut self, now: Nanos, q: &mut EventQueue, topo: &Topology) {
        let Some(inj) = self.cfg.pfc_injector else {
            return;
        };
        if now >= inj.stop {
            // Let the pause expire naturally; send no RESUME (a buggy NIC
            // would not be so polite; expiry models the watchdog effect).
            return;
        }
        self.stats.pfc_injected += 1;
        self.ctrl
            .push_back(Packet::Pfc(PfcFrame::pause(CLASS_DATA)));
        q.schedule(now + inj.period, EventKind::HostPfcInject { node: self.id });
        self.try_tx(now, q, topo);
    }

    /// Periodic stalled-flow scan: a deadlocked flow stops producing ACKs,
    /// so the agent must infer RTT from the oldest unacknowledged packet.
    /// With `periodic_probe` set, also runs the pingmesh-style periodic
    /// polling for every active flow.
    pub fn handle_agent_check(&mut self, now: Nanos, q: &mut EventQueue, topo: &Topology) {
        let Some(agent) = self.cfg.agent else {
            return;
        };
        for idx in 0..self.flows.len() as u32 {
            let f = &self.flows[idx as usize];
            if f.state != FlowState::Active {
                continue;
            }
            if let Some(&(_, sent_at)) = f.outstanding.front() {
                let implied = now.saturating_sub(sent_at);
                self.maybe_detect(idx, implied, now, q, topo);
            }
            if let Some(period) = agent.periodic_probe {
                let f = &mut self.flows[idx as usize];
                if f.state == FlowState::Active && now.saturating_sub(f.last_probe_at) >= period {
                    f.last_probe_at = now;
                    self.stats.probes_sent += 1;
                    let key = self.flows[idx as usize].key;
                    self.ctrl.push_back(Packet::Probe(Probe::new(key)));
                    self.try_tx(now, q, topo);
                }
            }
        }
        let any_active = self.flows.iter().any(|f| f.state != FlowState::Done);
        if any_active {
            q.schedule(
                now + agent.check_interval,
                EventKind::AgentCheck { node: self.id },
            );
        }
    }

    fn maybe_detect(
        &mut self,
        idx: u32,
        rtt: Nanos,
        now: Nanos,
        q: &mut EventQueue,
        topo: &Topology,
    ) {
        let Some(agent) = self.cfg.agent else {
            return;
        };
        if rtt < agent.threshold() {
            return;
        }
        let f = &mut self.flows[idx as usize];
        if f.last_probe_at != Nanos::ZERO
            && now.saturating_sub(f.last_probe_at) < agent.dedup_interval
        {
            return;
        }
        f.last_probe_at = now;
        self.detections.push(Detection {
            flow: f.id,
            key: f.key,
            at: now,
            observed_rtt: rtt,
        });
        self.stats.probes_sent += 1;
        let key = f.key;
        if let Some(r) = agent.retry {
            if r.max_attempts > 0 {
                self.flows[idx as usize].retry_anchor = now;
                q.schedule(
                    now + r.timeout,
                    EventKind::ProbeRetry {
                        node: self.id,
                        flow_idx: idx,
                        attempt: 1,
                    },
                );
            }
        }
        self.ctrl.push_back(Packet::Probe(Probe::new(key)));
        self.try_tx(now, q, topo);
    }

    /// A re-poll timer fired: if the flow still looks anomalous (measured
    /// or implied RTT over threshold), send another polling packet and arm
    /// the next rung of the backoff ladder.
    pub fn handle_probe_retry(
        &mut self,
        flow_idx: u32,
        attempt: u32,
        now: Nanos,
        q: &mut EventQueue,
        topo: &Topology,
    ) {
        let Some(agent) = self.cfg.agent else {
            return;
        };
        let Some(r) = agent.retry else {
            return;
        };
        let f = &self.flows[flow_idx as usize];
        if f.state != FlowState::Active {
            return;
        }
        let implied = f
            .outstanding
            .front()
            .map(|&(_, sent_at)| now.saturating_sub(sent_at))
            .unwrap_or(Nanos::ZERO);
        if f.last_rtt.max(implied) < agent.threshold() {
            return; // anomaly cleared; stop re-polling
        }
        let f = &mut self.flows[flow_idx as usize];
        f.last_probe_at = now;
        let key = f.key;
        let anchor = f.retry_anchor;
        self.stats.probes_sent += 1;
        self.stats.probes_retried += 1;
        self.ctrl.push_back(Packet::Probe(Probe::new(key)));
        if attempt < r.max_attempts {
            let delay = Nanos(
                r.timeout
                    .0
                    .saturating_mul((r.backoff.max(1) as u64).saturating_pow(attempt)),
            );
            if (now + delay).saturating_sub(anchor) <= r.deadline {
                q.schedule(
                    now + delay,
                    EventKind::ProbeRetry {
                        node: self.id,
                        flow_idx,
                        attempt: attempt + 1,
                    },
                );
            }
        }
        self.try_tx(now, q, topo);
    }
}

/// The 5-tuple of reverse-direction control traffic for a flow.
pub fn reverse_key(k: &FlowKey) -> FlowKey {
    FlowKey {
        src: k.dst,
        dst: k.src,
        src_port: k.dst_port,
        dst_port: k.src_port,
        proto: k.proto,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{dumbbell, EVAL_BANDWIDTH, EVAL_DELAY};

    fn setup() -> (Topology, HostState, EventQueue) {
        let topo = dumbbell(1, 1, EVAL_BANDWIDTH, EVAL_DELAY);
        let h0 = topo.hosts().next().unwrap();
        let host = HostState::new(h0, HostConfig::for_line_rate(100e9));
        (topo, host, EventQueue::new())
    }

    #[test]
    fn flow_paces_at_line_rate() {
        let (topo, mut host, mut q) = setup();
        let hosts: Vec<_> = topo.hosts().collect();
        let key = FlowKey::roce(hosts[0], hosts[1], 1);
        host.add_flow(FlowId(0), key, 10_000, Nanos::ZERO);
        host.bootstrap(&mut q);
        let mut sent = 0;
        while let Some((t, ev)) = q.pop() {
            match ev {
                EventKind::FlowStart { flow_idx, .. } => {
                    host.handle_flow_start(flow_idx, t, &mut q, &topo)
                }
                EventKind::FlowReady { flow_idx, .. } => {
                    host.handle_flow_ready(flow_idx, t, &mut q, &topo)
                }
                EventKind::PortTxDone { .. } => host.handle_tx_done(t, &mut q, &topo),
                EventKind::Arrive { packet, .. } if q.packet(packet).is_data() => sent += 1,
                _ => {}
            }
        }
        // 10_000 B = 10 packets of 1000 B payload.
        assert_eq!(sent, 10);
        assert_eq!(host.stats.data_sent, 10);
    }

    #[test]
    fn pfc_pause_stops_data_but_not_ctrl() {
        let (topo, mut host, mut q) = setup();
        let hosts: Vec<_> = topo.hosts().collect();
        let key = FlowKey::roce(hosts[0], hosts[1], 1);
        host.add_flow(FlowId(0), key, 100_000, Nanos::ZERO);
        host.bootstrap(&mut q);
        // Pause the host port before the flow starts.
        host.handle_arrive(
            Packet::Pfc(PfcFrame::pause(CLASS_DATA)),
            Nanos::ZERO,
            &mut q,
            &topo,
        );
        // Run for a short window; data must not leave while paused.
        let mut data_arrivals = 0;
        while let Some((t, ev)) = q.pop() {
            if t > Nanos::from_micros(50) {
                break;
            }
            match ev {
                EventKind::FlowStart { flow_idx, .. } => {
                    host.handle_flow_start(flow_idx, t, &mut q, &topo)
                }
                EventKind::FlowReady { flow_idx, .. } => {
                    host.handle_flow_ready(flow_idx, t, &mut q, &topo)
                }
                EventKind::PortTxDone { .. } => host.handle_tx_done(t, &mut q, &topo),
                EventKind::PortKick { .. } => host.try_tx(t, &mut q, &topo),
                EventKind::Arrive { packet, .. } if q.packet(packet).is_data() => {
                    data_arrivals += 1
                }
                _ => {}
            }
        }
        assert_eq!(data_arrivals, 0, "paused host must not emit data");
    }

    #[test]
    fn receiver_acks_and_cnps() {
        let (topo, mut host, mut q) = setup();
        let hosts: Vec<_> = topo.hosts().collect();
        // host is hosts[0]; packet from hosts[1] arrives here.
        let key = FlowKey::roce(hosts[1], hosts[0], 5);
        let d = DataPacket {
            flow: FlowId(9),
            key,
            seq: 0,
            size: DATA_PKT_SIZE,
            ecn_ce: true,
            sent_at: Nanos(100),
            last: false,
        };
        host.handle_arrive(Packet::Data(d), Nanos(1000), &mut q, &topo);
        assert_eq!(host.stats.acks_sent, 1);
        assert_eq!(host.stats.cnps_sent, 1);
        // Second ECN-marked packet within the CNP window: no second CNP.
        let d2 = DataPacket { seq: 1, ..d };
        host.handle_arrive(Packet::Data(d2), Nanos(2000), &mut q, &topo);
        assert_eq!(host.stats.acks_sent, 2);
        assert_eq!(host.stats.cnps_sent, 1, "CNPs rate-limited per flow");
    }

    #[test]
    fn agent_detects_high_rtt_and_dedups() {
        let (topo, mut host, mut q) = setup();
        let hosts: Vec<_> = topo.hosts().collect();
        let key = FlowKey::roce(hosts[0], hosts[1], 1);
        host.cfg.agent = Some(AgentConfig {
            rtt_threshold_factor: 2.0,
            base_rtt: Nanos::from_micros(10),
            check_interval: Nanos::from_micros(100),
            dedup_interval: Nanos::from_millis(1),
            periodic_probe: None,
            retry: None,
        });
        host.add_flow(FlowId(0), key, 1_000_000, Nanos::ZERO);
        // Simulate an ACK with a 50 µs RTT (threshold is 20 µs).
        host.flows[0].state = FlowState::Active;
        host.flows[0].outstanding.push_back((0, Nanos::ZERO));
        let ack = AckPacket {
            flow: FlowId(0),
            key: reverse_key(&key),
            seq: 0,
            echo_sent_at: Nanos::ZERO,
            last: false,
        };
        host.handle_arrive(Packet::Ack(ack), Nanos::from_micros(50), &mut q, &topo);
        assert_eq!(host.detections.len(), 1);
        assert_eq!(host.detections[0].observed_rtt, Nanos::from_micros(50));
        // A second slow ACK inside the dedup window does not re-trigger.
        host.flows[0].outstanding.push_back((1, Nanos::ZERO));
        let ack2 = AckPacket { seq: 1, ..ack };
        host.handle_arrive(Packet::Ack(ack2), Nanos::from_micros(120), &mut q, &topo);
        assert_eq!(host.detections.len(), 1, "deduped within interval");
    }

    #[test]
    fn stalled_flow_detected_via_agent_check() {
        let (topo, mut host, mut q) = setup();
        let hosts: Vec<_> = topo.hosts().collect();
        let key = FlowKey::roce(hosts[0], hosts[1], 1);
        host.cfg.agent = Some(AgentConfig {
            rtt_threshold_factor: 3.0,
            base_rtt: Nanos::from_micros(10),
            check_interval: Nanos::from_micros(100),
            dedup_interval: Nanos::from_millis(1),
            periodic_probe: None,
            retry: None,
        });
        host.add_flow(FlowId(0), key, 1_000_000, Nanos::ZERO);
        host.flows[0].state = FlowState::Active;
        // A packet has been in flight for 500 µs with no ACK (deadlock-like).
        host.flows[0].outstanding.push_back((0, Nanos::ZERO));
        host.handle_agent_check(Nanos::from_micros(500), &mut q, &topo);
        assert_eq!(host.detections.len(), 1);
    }

    #[test]
    fn periodic_probes_fire_without_rtt_anomaly() {
        let (topo, mut host, mut q) = setup();
        let hosts: Vec<_> = topo.hosts().collect();
        let key = FlowKey::roce(hosts[0], hosts[1], 1);
        host.cfg.agent = Some(AgentConfig {
            rtt_threshold_factor: 100.0, // never trips on RTT
            base_rtt: Nanos::from_micros(10),
            check_interval: Nanos::from_micros(100),
            dedup_interval: Nanos::from_millis(10),
            periodic_probe: Some(Nanos::from_micros(300)),
            retry: None,
        });
        host.add_flow(FlowId(0), key, 1_000_000, Nanos::ZERO);
        host.flows[0].state = FlowState::Active;
        // Pingmesh-style: checks at 100us cadence emit probes every >=300us.
        for step in 1..=10u64 {
            host.handle_agent_check(Nanos::from_micros(step * 100), &mut q, &topo);
        }
        assert!(
            (3..=4).contains(&host.stats.probes_sent),
            "probes {}",
            host.stats.probes_sent
        );
        assert!(host.detections.is_empty(), "no RTT detections");
    }

    #[test]
    fn injector_emits_pauses_periodically() {
        let (topo, mut host, mut q) = setup();
        host.cfg.pfc_injector = Some(PfcInjectorConfig {
            start: Nanos::ZERO,
            stop: Nanos::from_micros(500),
            period: Nanos::from_micros(100),
        });
        host.bootstrap(&mut q);
        let mut pauses = 0;
        while let Some((t, ev)) = q.pop() {
            match ev {
                EventKind::HostPfcInject { .. } => host.handle_pfc_inject(t, &mut q, &topo),
                EventKind::PortTxDone { .. } => host.handle_tx_done(t, &mut q, &topo),
                EventKind::Arrive { packet, .. } => {
                    if matches!(q.packet(packet), Packet::Pfc(f) if f.is_pause()) {
                        pauses += 1;
                    }
                }
                _ => {}
            }
        }
        assert_eq!(pauses, 5, "one pause per period in [0,500)us");
        assert_eq!(host.stats.pfc_injected, 5);
    }

    fn retry_agent() -> AgentConfig {
        AgentConfig {
            rtt_threshold_factor: 2.0,
            base_rtt: Nanos::from_micros(10),
            check_interval: Nanos::from_micros(100),
            dedup_interval: Nanos::from_millis(10),
            periodic_probe: None,
            retry: Some(ProbeRetryConfig {
                max_attempts: 3,
                timeout: Nanos::from_micros(50),
                backoff: 2,
                deadline: Nanos::from_millis(1),
            }),
        }
    }

    fn drive_retries(host: &mut HostState, q: &mut EventQueue, topo: &Topology) {
        while let Some((t, ev)) = q.pop() {
            match ev {
                EventKind::ProbeRetry {
                    flow_idx, attempt, ..
                } => host.handle_probe_retry(flow_idx, attempt, t, q, topo),
                EventKind::PortTxDone { .. } => host.handle_tx_done(t, q, topo),
                _ => {}
            }
        }
    }

    #[test]
    fn probe_retry_ladder_repolls_while_anomalous() {
        let (topo, mut host, mut q) = setup();
        let hosts: Vec<_> = topo.hosts().collect();
        let key = FlowKey::roce(hosts[0], hosts[1], 1);
        host.cfg.agent = Some(retry_agent());
        host.add_flow(FlowId(0), key, 1_000_000, Nanos::ZERO);
        host.flows[0].state = FlowState::Active;
        host.flows[0].outstanding.push_back((0, Nanos::ZERO));
        // A 50 µs RTT (threshold 20 µs) triggers detection + probe; the
        // RTT never improves, so every rung of the ladder re-polls.
        let ack = AckPacket {
            flow: FlowId(0),
            key: reverse_key(&key),
            seq: 0,
            echo_sent_at: Nanos::ZERO,
            last: false,
        };
        host.handle_arrive(Packet::Ack(ack), Nanos::from_micros(50), &mut q, &topo);
        assert_eq!(host.detections.len(), 1);
        drive_retries(&mut host, &mut q, &topo);
        assert_eq!(host.stats.probes_retried, 3, "full ladder while anomalous");
        assert_eq!(host.stats.probes_sent, 4, "initial probe + 3 re-polls");
        assert_eq!(host.detections.len(), 1, "re-polls are not new detections");
    }

    #[test]
    fn probe_retry_stops_when_anomaly_clears() {
        let (topo, mut host, mut q) = setup();
        let hosts: Vec<_> = topo.hosts().collect();
        let key = FlowKey::roce(hosts[0], hosts[1], 1);
        host.cfg.agent = Some(retry_agent());
        host.add_flow(FlowId(0), key, 1_000_000, Nanos::ZERO);
        host.flows[0].state = FlowState::Active;
        host.flows[0].outstanding.push_back((0, Nanos::ZERO));
        let ack = AckPacket {
            flow: FlowId(0),
            key: reverse_key(&key),
            seq: 0,
            echo_sent_at: Nanos::ZERO,
            last: false,
        };
        host.handle_arrive(Packet::Ack(ack), Nanos::from_micros(50), &mut q, &topo);
        assert_eq!(host.detections.len(), 1);
        // The congestion clears: a fresh fast ACK before the first re-poll.
        let ack2 = AckPacket {
            seq: 1,
            echo_sent_at: Nanos::from_micros(54),
            ..ack
        };
        host.handle_arrive(Packet::Ack(ack2), Nanos::from_micros(59), &mut q, &topo);
        drive_retries(&mut host, &mut q, &topo);
        assert_eq!(host.stats.probes_retried, 0, "ladder stops once healthy");
    }

    #[test]
    fn reverse_key_round_trips() {
        let k = FlowKey::roce(NodeId(3), NodeId(7), 123);
        assert_eq!(reverse_key(&reverse_key(&k)), k);
        assert_eq!(reverse_key(&k).src, k.dst);
    }
}
