//! Identifiers for nodes, ports and flows.

use core::fmt;

/// A node in the topology: either a host (RDMA NIC + application) or a
/// switch. IDs are dense indices assigned by the topology builder.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A directional port on a node. Port numbers are local to the node.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct PortId {
    pub node: NodeId,
    pub port: u8,
}

impl PortId {
    pub fn new(node: NodeId, port: u8) -> Self {
        PortId { node, port }
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SW{}.P{}", self.node.0, self.port)
    }
}

/// An application flow, identified by its RoCEv2 5-tuple.
///
/// Source/destination IPs are modeled as the host [`NodeId`]s; the UDP source
/// port carries RoCEv2 entropy for ECMP, and the destination port is the
/// RoCEv2 UDP port (constant). The protocol byte distinguishes data flows
/// from control pseudo-flows in telemetry.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct FlowKey {
    pub src: NodeId,
    pub dst: NodeId,
    pub src_port: u16,
    pub dst_port: u16,
    pub proto: u8,
}

/// The RoCEv2 UDP destination port.
pub const ROCE_PORT: u16 = 4791;
/// IP protocol number for UDP, used for all RoCEv2 flows.
pub const PROTO_UDP: u8 = 17;

impl FlowKey {
    pub fn roce(src: NodeId, dst: NodeId, src_port: u16) -> Self {
        FlowKey {
            src,
            dst,
            src_port,
            dst_port: ROCE_PORT,
            proto: PROTO_UDP,
        }
    }

    /// 32-bit hash used for ECMP next-hop choice and telemetry slot index.
    ///
    /// A small xorshift-multiply mix; deterministic across runs and
    /// platforms (required for reproducible experiments).
    pub fn hash32(&self) -> u32 {
        let mut x = (self.src.0 as u64) << 32 | self.dst.0 as u64;
        x ^= (self.src_port as u64) << 48 | (self.dst_port as u64) << 32 | self.proto as u64;
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 29;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 32;
        x as u32
    }

    /// Byte size of the 5-tuple as stored in switch telemetry (IPv4 sizes:
    /// 4 + 4 + 2 + 2 + 1).
    pub const WIRE_SIZE: usize = 13;
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}->{}:{}/{}",
            self.src.0, self.src_port, self.dst.0, self.dst_port, self.proto
        )
    }
}

/// A dense per-simulation flow index (assigned in order of flow definition);
/// cheaper to use as a map key than the 5-tuple in hot paths.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct FlowId(pub u32);

impl FlowId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let a = FlowKey::roce(NodeId(1), NodeId(2), 1000);
        let b = FlowKey::roce(NodeId(1), NodeId(2), 1001);
        let c = FlowKey::roce(NodeId(2), NodeId(1), 1000);
        assert_eq!(a.hash32(), a.hash32());
        assert_ne!(a.hash32(), b.hash32());
        assert_ne!(a.hash32(), c.hash32());
    }

    #[test]
    fn display_forms() {
        let p = PortId::new(NodeId(4), 1);
        assert_eq!(p.to_string(), "SW4.P1");
        let f = FlowKey::roce(NodeId(1), NodeId(2), 7);
        assert_eq!(f.to_string(), "1:7->2:4791/17");
    }

    #[test]
    fn ecmp_hash_distribution_is_roughly_uniform() {
        // 4 buckets, 4096 flows: each bucket should get 15-35%.
        let mut buckets = [0u32; 4];
        for sp in 0..4096u16 {
            let f = FlowKey::roce(NodeId(9), NodeId(13), sp);
            buckets[(f.hash32() % 4) as usize] += 1;
        }
        for &b in &buckets {
            assert!((614..=1434).contains(&b), "skewed bucket: {buckets:?}");
        }
    }
}
