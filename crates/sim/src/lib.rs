//! # hawkeye-sim
//!
//! A deterministic, discrete-event, packet-level simulator of RoCEv2
//! data-center networks with Priority Flow Control — the substrate on which
//! the Hawkeye diagnosis system (SIGCOMM 2025) is reproduced. It plays the
//! role the NS-3 HPCC simulator plays in the paper's evaluation.
//!
//! What is modeled:
//! - **Topologies**: fat-tree (the paper's K=4 / 20-switch evaluation
//!   network), chains and rings (the Fig. 1 case-study topologies),
//!   dumbbells; shortest-path ECMP routing with scenario-installable route
//!   overrides (to emulate the routing misconfigurations that create cyclic
//!   buffer dependencies).
//! - **Switches**: shared-buffer, ingress-accounted PFC (Xoff/Xon with
//!   quanta-bearing PAUSE/RESUME frames and refresh), strict-priority
//!   unpausable control class, RED/ECN marking, per-port FIFO data queues.
//! - **Hosts**: RDMA NICs pacing flows at DCQCN-controlled rates, per-packet
//!   ACKs echoing send timestamps (RTT measurement), CNP generation,
//!   PFC-honoring uplinks, host-side PFC injection faults, and the Hawkeye
//!   host detection agent (RTT-threshold polling-packet trigger).
//! - **Instrumentation**: the [`hooks::SwitchHook`] trait, through which a
//!   monitoring system (Hawkeye, or a baseline) observes enqueues and PFC
//!   frames and steers polling packets — the simulator provides mechanism,
//!   the monitoring crate provides policy.
//!
//! Determinism: all randomness is seeded; events tie-break in insertion
//! order; two runs with identical inputs produce identical outputs.

pub mod dcqcn;
pub mod event;
pub mod faults;
pub mod hooks;
pub mod host;
pub mod ids;
pub mod observed;
pub mod packet;
pub mod sim;
pub mod summary;
pub mod switch;
pub mod time;
pub mod topology;
pub mod units;

pub use event::{EventKind, EventQueue, HeapQueue, PacketRef};
pub use faults::{
    CpuPathFault, FaultInjector, FaultPlan, FaultRng, FaultStats, ProbeFate, STREAM_PROBE,
    STREAM_UPLOAD,
};
pub use hooks::{
    CpuNotification, EnqueueRecord, NullHook, PfcEvent, ProbeDecision, SwitchHook, SwitchView,
};
pub use host::{
    AgentConfig, Detection, HostConfig, HostState, PfcInjectorConfig, ProbeRetryConfig,
};
pub use ids::{FlowId, FlowKey, NodeId, PortId};
pub use observed::{record_sim_metrics, trace_detections, trace_drop_warnings, ObservedHook};
pub use packet::{
    AckPacket, CnpPacket, DataPacket, Packet, PfcFrame, PollingFlags, Probe, CLASS_CONTROL,
    CLASS_DATA, CTRL_PKT_SIZE, DATA_PAYLOAD, DATA_PKT_SIZE,
};
pub use sim::{FlowMeta, SimConfig, Simulator};
pub use summary::{percentile_nearest_rank, RunSummary};
pub use switch::{SwitchConfig, SwitchState, SwitchStats};
pub use time::Nanos;
pub use topology::{
    chain, clos, dumbbell, fat_tree, leaf_spine, ring, ClosConfig, NodeKind, PortInfo, Topology,
    EVAL_BANDWIDTH, EVAL_DELAY,
};
pub use units::{pause_time_to_quanta, quanta_to_pause_time, Bandwidth, Rate};
