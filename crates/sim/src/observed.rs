//! [`ObservedHook`]: a transparent observability decorator over any
//! [`SwitchHook`].
//!
//! Wraps the real monitoring policy (Hawkeye's hook, a baseline, or
//! [`NullHook`](crate::hooks::NullHook)) and records structured trace events
//! and metrics into a [`hawkeye_obs::Recorder`] *without changing any
//! decision the inner hook makes* — probes forward identically, telemetry
//! registers see the same updates. With `enabled == false` every callback
//! is the inner call plus one predictable branch, so an instrumented build
//! pays nothing when observability is off.

use crate::hooks::{EnqueueRecord, PfcEvent, ProbeDecision, SwitchHook, SwitchView};
use crate::host::Detection;
use crate::ids::NodeId;
use crate::packet::Probe;
use crate::sim::Simulator;
use crate::time::Nanos;
use hawkeye_obs::{kind, MetricKey, MetricsRegistry, ObsConfig, Recorder, TraceEvent};

/// See module docs.
#[derive(Debug)]
pub struct ObservedHook<H: SwitchHook> {
    inner: H,
    pub obs: Recorder,
}

impl<H: SwitchHook> ObservedHook<H> {
    /// Wrap `inner`, recording into a fresh [`Recorder`] per `cfg`.
    pub fn new(inner: H, cfg: ObsConfig) -> Self {
        ObservedHook {
            inner,
            obs: Recorder::new(cfg),
        }
    }

    /// Wrap `inner` with observability off: the passthrough cost baseline.
    pub fn disabled(inner: H) -> Self {
        ObservedHook {
            inner,
            obs: Recorder::disabled(),
        }
    }

    pub fn inner(&self) -> &H {
        &self.inner
    }

    pub fn inner_mut(&mut self) -> &mut H {
        &mut self.inner
    }

    /// Unwrap, discarding the recorder.
    pub fn into_inner(self) -> H {
        self.inner
    }

    /// Unwrap into the inner hook and the recorder.
    pub fn into_parts(self) -> (H, Recorder) {
        (self.inner, self.obs)
    }
}

impl<H: SwitchHook> SwitchHook for ObservedHook<H> {
    #[inline]
    fn on_data_enqueue(&mut self, rec: &EnqueueRecord) {
        if self.obs.enabled {
            if self.obs.tracer.wants(kind::ENQUEUE) {
                self.obs.tracer.record(
                    rec.timestamp.as_nanos(),
                    TraceEvent::Enqueue {
                        switch: rec.switch.0,
                        in_port: rec.in_port,
                        out_port: rec.out_port,
                        flow: rec.flow.0,
                        size: rec.size,
                        qdepth_pkts: rec.qdepth_pkts,
                        qdepth_bytes: rec.qdepth_bytes,
                        paused: rec.egress_paused,
                    },
                );
            }
            let m = &mut self.obs.metrics;
            m.inc(MetricKey::at_port(
                "enqueue_pkts",
                rec.switch.0,
                rec.out_port,
            ));
            m.observe(
                MetricKey::at_switch("enqueue_qdepth_bytes", rec.switch.0),
                rec.qdepth_bytes,
            );
        }
        self.inner.on_data_enqueue(rec);
    }

    #[inline]
    fn on_pfc_frame(&mut self, ev: &PfcEvent) {
        if self.obs.enabled {
            self.obs.tracer.record(
                ev.now.as_nanos(),
                if ev.pause {
                    TraceEvent::PfcPause {
                        switch: ev.switch.0,
                        port: ev.port,
                        class: ev.class,
                        pause_ns: ev.pause_time.as_nanos(),
                    }
                } else {
                    TraceEvent::PfcResume {
                        switch: ev.switch.0,
                        port: ev.port,
                        class: ev.class,
                    }
                },
            );
            let name = if ev.pause {
                "pfc_pause_rx"
            } else {
                "pfc_resume_rx"
            };
            self.obs
                .metrics
                .inc(MetricKey::at_port(name, ev.switch.0, ev.port));
        }
        self.inner.on_pfc_frame(ev);
    }

    #[inline]
    fn on_probe(
        &mut self,
        switch: NodeId,
        in_port: u8,
        probe: Probe,
        view: &SwitchView<'_>,
        now: Nanos,
    ) -> ProbeDecision {
        let decision = self.inner.on_probe(switch, in_port, probe, view, now);
        if self.obs.enabled {
            self.obs.tracer.record(
                now.as_nanos(),
                TraceEvent::ProbeHop {
                    switch: switch.0,
                    in_port,
                    victim_src: probe.victim.src.0,
                    victim_dst: probe.victim.dst.0,
                    victim_sport: probe.victim.src_port,
                    flags: probe.flags.0,
                    ttl: probe.ttl,
                    emitted: decision.emit.len() as u32,
                    mirrored: decision.mirror_to_cpu,
                },
            );
            let m = &mut self.obs.metrics;
            m.inc(MetricKey::at_switch("probe_hops", switch.0));
            m.add(
                MetricKey::at_switch("probe_copies_emitted", switch.0),
                decision.emit.len() as u64,
            );
            if decision.mirror_to_cpu {
                m.inc(MetricKey::at_switch("probe_cpu_mirrors", switch.0));
                self.obs.tracer.record(
                    now.as_nanos(),
                    TraceEvent::CpuMirror {
                        switch: switch.0,
                        victim_src: probe.victim.src.0,
                        victim_dst: probe.victim.dst.0,
                        victim_sport: probe.victim.src_port,
                    },
                );
            }
        }
        decision
    }
}

/// Append the run's end-host victim detections to a recorder's trace (the
/// hook never sees detections — they happen in host agents — so the
/// harness adds them after `run_until`).
pub fn trace_detections(obs: &mut Recorder, detections: &[Detection]) {
    for d in detections {
        obs.trace(
            d.at.as_nanos(),
            TraceEvent::Detection {
                victim_src: d.key.src.0,
                victim_dst: d.key.dst.0,
                victim_sport: d.key.src_port,
                rtt_ns: d.observed_rtt.as_nanos(),
            },
        );
    }
}

/// Emit a [`TraceEvent::DropWarning`] for every switch that dropped packets
/// it should not have. Buffer drops on a PFC-enabled fabric and routing
/// misses are both anomalies worth flagging loudly: a lossless fabric that
/// drops has already violated its core invariant, and diagnosis quality
/// degrades silently when the victim's packets never reached the victim.
pub fn trace_drop_warnings<H: SwitchHook>(sim: &Simulator<H>, obs: &mut Recorder) {
    let now = sim.now().as_nanos();
    for sw in sim.topo().switches() {
        let st = &sim.switch(sw).stats;
        if st.drops_buffer > 0 {
            obs.trace(
                now,
                TraceEvent::DropWarning {
                    switch: sw.0,
                    what: "buffer".to_string(),
                    count: st.drops_buffer,
                },
            );
        }
        if st.drops_no_route > 0 {
            obs.trace(
                now,
                TraceEvent::DropWarning {
                    switch: sw.0,
                    what: "no_route".to_string(),
                    count: st.drops_no_route,
                },
            );
        }
    }
}

/// Fold the simulator's per-switch and per-host hardware counters into a
/// metrics registry. This is the single source of truth the run summary
/// and eval outcomes read back from.
pub fn record_sim_metrics<H: SwitchHook>(sim: &Simulator<H>, reg: &mut MetricsRegistry) {
    for sw in sim.topo().switches() {
        let st = &sim.switch(sw).stats;
        let id = sw.0;
        reg.add(MetricKey::at_switch("switch_data_pkts", id), st.data_pkts);
        reg.add(MetricKey::at_switch("switch_data_bytes", id), st.data_bytes);
        reg.add(MetricKey::at_switch("switch_ctrl_pkts", id), st.ctrl_pkts);
        reg.add(
            MetricKey::at_switch("pfc_pause_sent", id),
            st.pfc_pause_sent,
        );
        reg.add(
            MetricKey::at_switch("pfc_resume_sent", id),
            st.pfc_resume_sent,
        );
        reg.add(
            MetricKey::at_switch("pfc_pause_recv", id),
            st.pfc_pause_recv,
        );
        reg.add(MetricKey::at_switch("probes_seen", id), st.probes_seen);
        reg.add(
            MetricKey::at_switch("probes_emitted", id),
            st.probes_emitted,
        );
        reg.add(
            MetricKey::at_switch("drops_no_route", id),
            st.drops_no_route,
        );
        reg.add(MetricKey::at_switch("drops_buffer", id), st.drops_buffer);
    }
    for h in sim.topo().hosts() {
        let st = &sim.host(h).stats;
        let id = h.0;
        reg.add(MetricKey::at_switch("host_data_sent", id), st.data_sent);
        reg.add(MetricKey::at_switch("host_data_rcvd", id), st.data_rcvd);
        reg.add(MetricKey::at_switch("host_cnps_sent", id), st.cnps_sent);
        reg.add(
            MetricKey::at_switch("host_pfc_pause_rcvd", id),
            st.pfc_pause_rcvd,
        );
        reg.add(
            MetricKey::at_switch("host_pfc_injected", id),
            st.pfc_injected,
        );
        reg.add(MetricKey::at_switch("host_probes_sent", id), st.probes_sent);
    }
    reg.add(
        MetricKey::global("events_processed"),
        sim.events_processed(),
    );
    reg.add(
        MetricKey::global("detections"),
        sim.detections().len() as u64,
    );
    // Fault-injection counters are folded only when something actually
    // happened: creating a zero-valued key would perturb the registry
    // snapshot of every fault-free run.
    if !sim.fault_plan().is_none() {
        reg.add(
            MetricKey::global("faults_injected"),
            sim.fault_stats().total_injected(),
        );
    }
    let retried: u64 = sim
        .topo()
        .hosts()
        .map(|h| sim.host(h).stats.probes_retried)
        .sum();
    if retried > 0 {
        reg.add(MetricKey::global("probes_retried"), retried);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NullHook;
    use crate::ids::FlowKey;
    use crate::sim::SimConfig;
    use crate::topology::{dumbbell, EVAL_BANDWIDTH, EVAL_DELAY};

    fn run_with<H: SwitchHook>(hook: H) -> Simulator<H> {
        let topo = dumbbell(2, 2, EVAL_BANDWIDTH, EVAL_DELAY);
        let hosts: Vec<_> = topo.hosts().collect();
        let mut sim = Simulator::new(topo, SimConfig::default(), hook);
        sim.add_flow(FlowKey::roce(hosts[0], hosts[2], 1), 500_000, Nanos::ZERO);
        sim.add_flow(FlowKey::roce(hosts[1], hosts[3], 2), 500_000, Nanos::ZERO);
        sim.run_until(Nanos::from_millis(4));
        sim
    }

    #[test]
    fn observed_null_hook_changes_nothing() {
        let base = run_with(NullHook);
        let wrapped = run_with(ObservedHook::new(
            NullHook,
            hawkeye_obs::ObsConfig::default(),
        ));
        assert_eq!(base.events_processed(), wrapped.events_processed());
        assert_eq!(
            crate::summary::RunSummary::of(&base),
            crate::summary::RunSummary::of(&wrapped)
        );
    }

    #[test]
    fn enqueues_are_traced_and_counted() {
        let sim = run_with(ObservedHook::new(
            NullHook,
            hawkeye_obs::ObsConfig::default(),
        ));
        let obs = &sim.hook.obs;
        assert!(obs.tracer.recorded() > 0);
        assert!(obs.metrics.counter_total("enqueue_pkts") > 0);
        // Dumbbell with ample buffers: no PFC expected in this light run,
        // but the data-path counters must reflect every enqueue the switch
        // performed.
        let mut reg = MetricsRegistry::new();
        record_sim_metrics(&sim, &mut reg);
        assert!(reg.counter_total("switch_data_pkts") >= obs.metrics.counter_total("enqueue_pkts"));
    }

    #[test]
    fn disabled_hook_records_nothing() {
        let sim = run_with(ObservedHook::disabled(NullHook));
        assert_eq!(sim.hook.obs.tracer.recorded(), 0);
        assert!(sim.hook.obs.metrics.snapshot().counters.is_empty());
    }
}
