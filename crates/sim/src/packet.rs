//! Packet and frame types.
//!
//! The simulator is packet-level: every data MTU, acknowledgment, CNP, PFC
//! frame and Hawkeye polling packet is an individual event-carrying object.

use crate::ids::{FlowId, FlowKey};
use crate::time::Nanos;

/// Priority class of lossless RoCEv2 data traffic (subject to PFC).
pub const CLASS_DATA: u8 = 0;
/// Priority class of control traffic (ACK/CNP/PFC/polling packets); mapped
/// to a strict-priority queue that PFC never pauses, mirroring production
/// RoCE deployments (and §3.4: "polling packets are set to the same priority
/// as control packets (e.g., CNP)").
pub const CLASS_CONTROL: u8 = 7;

/// Wire size of a full data MTU (1000B payload + RoCEv2/UDP/IP/Ethernet
/// headers), matching the HPCC/NS-3 convention of 1 KB packets.
pub const DATA_PKT_SIZE: u32 = 1048;
/// Payload bytes carried per data packet.
pub const DATA_PAYLOAD: u32 = 1000;
/// Wire size of ACK / CNP / PFC / polling control frames.
pub const CTRL_PKT_SIZE: u32 = 64;

/// A RoCEv2 data packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataPacket {
    pub flow: FlowId,
    pub key: FlowKey,
    /// Sequence number in packets (PSN).
    pub seq: u64,
    /// Wire size in bytes, including headers.
    pub size: u32,
    /// ECN Congestion Experienced mark, set by switches.
    pub ecn_ce: bool,
    /// Time the sender NIC emitted the packet (for RTT measurement by the
    /// receiver's ACK echo; real NICs keep this in a send-tracking table).
    pub sent_at: Nanos,
    /// True if this is the last packet of the flow.
    pub last: bool,
}

/// A RoCEv2 acknowledgment, echoing the data packet's send timestamp so the
/// source NIC can measure RTT (as the BlueField-3 PCC data path does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckPacket {
    pub flow: FlowId,
    pub key: FlowKey,
    pub seq: u64,
    pub echo_sent_at: Nanos,
    pub last: bool,
}

/// A Congestion Notification Packet (DCQCN), sent by the receiver NIC when
/// ECN-marked data arrives (rate-limited to one per flow per CNP window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CnpPacket {
    pub flow: FlowId,
    pub key: FlowKey,
}

/// An IEEE 802.1Qbb PFC frame for a single priority class.
///
/// `quanta == 0` is a RESUME; non-zero quanta pause the class for
/// `quanta * 512 bit-times` at the receiving port's line rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PfcFrame {
    pub class: u8,
    pub quanta: u16,
}

impl PfcFrame {
    pub fn pause(class: u8) -> Self {
        PfcFrame {
            class,
            quanta: u16::MAX,
        }
    }
    pub fn resume(class: u8) -> Self {
        PfcFrame { class, quanta: 0 }
    }
    pub fn is_pause(&self) -> bool {
        self.quanta != 0
    }
}

/// Hawkeye polling-packet flags (Table 1 of the paper).
///
/// Bit 0 ("victim" bit): trace along the victim flow path.
/// Bit 1 ("PFC" bit): trace along PFC causality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct PollingFlags(pub u8);

impl PollingFlags {
    /// `00`: useless tracing (dropped by switches).
    pub const USELESS: PollingFlags = PollingFlags(0b00);
    /// `01` (default): only trace along the victim flow path.
    pub const VICTIM_PATH: PollingFlags = PollingFlags(0b01);
    /// `10`: only trace along PFC causality.
    pub const PFC_TRACE: PollingFlags = PollingFlags(0b10);
    /// `11`: trace both.
    pub const BOTH: PollingFlags = PollingFlags(0b11);

    pub fn traces_victim_path(self) -> bool {
        self.0 & 0b01 != 0
    }
    pub fn traces_pfc(self) -> bool {
        self.0 & 0b10 != 0
    }
    pub fn is_useless(self) -> bool {
        self.0 & 0b11 == 0
    }
    /// Set the PFC-tracing bit (done by a switch observing the victim paused).
    pub fn with_pfc(self) -> PollingFlags {
        PollingFlags(self.0 | 0b10)
    }
}

/// A Hawkeye polling packet (Fig. 5): the victim flow's 5-tuple plus the
/// 2-bit polling flag. Forwarded in the unpausable control class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    pub victim: FlowKey,
    pub flags: PollingFlags,
    /// Hop budget guarding against pathological forwarding loops; the
    /// causality analysis itself terminates tracing, this is a backstop.
    pub ttl: u8,
}

impl Probe {
    pub fn new(victim: FlowKey) -> Self {
        Probe {
            victim,
            flags: PollingFlags::VICTIM_PATH,
            ttl: 32,
        }
    }
}

/// Every frame the simulator moves across links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Packet {
    Data(DataPacket),
    Ack(AckPacket),
    Cnp(CnpPacket),
    Pfc(PfcFrame),
    Probe(Probe),
}

impl Packet {
    /// Wire size in bytes (used for serialization-time and buffer
    /// accounting).
    pub fn size(&self) -> u32 {
        match self {
            Packet::Data(d) => d.size,
            _ => CTRL_PKT_SIZE,
        }
    }

    /// Priority class for queueing and PFC.
    pub fn class(&self) -> u8 {
        match self {
            Packet::Data(_) => CLASS_DATA,
            _ => CLASS_CONTROL,
        }
    }

    pub fn is_data(&self) -> bool {
        matches!(self, Packet::Data(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn polling_flag_semantics_match_table1() {
        assert!(PollingFlags::USELESS.is_useless());
        assert!(PollingFlags::VICTIM_PATH.traces_victim_path());
        assert!(!PollingFlags::VICTIM_PATH.traces_pfc());
        assert!(PollingFlags::PFC_TRACE.traces_pfc());
        assert!(!PollingFlags::PFC_TRACE.traces_victim_path());
        assert!(PollingFlags::BOTH.traces_pfc() && PollingFlags::BOTH.traces_victim_path());
        assert_eq!(PollingFlags::VICTIM_PATH.with_pfc(), PollingFlags::BOTH);
        assert_eq!(PollingFlags::PFC_TRACE.with_pfc(), PollingFlags::PFC_TRACE);
    }

    #[test]
    fn pfc_frame_constructors() {
        assert!(PfcFrame::pause(CLASS_DATA).is_pause());
        assert!(!PfcFrame::resume(CLASS_DATA).is_pause());
    }

    #[test]
    fn packet_sizes_and_classes() {
        let key = FlowKey::roce(NodeId(0), NodeId(1), 9);
        let d = Packet::Data(DataPacket {
            flow: FlowId(0),
            key,
            seq: 0,
            size: DATA_PKT_SIZE,
            ecn_ce: false,
            sent_at: Nanos::ZERO,
            last: false,
        });
        assert_eq!(d.size(), 1048);
        assert_eq!(d.class(), CLASS_DATA);
        assert!(d.is_data());
        let p = Packet::Pfc(PfcFrame::pause(0));
        assert_eq!(p.size(), CTRL_PKT_SIZE);
        assert_eq!(p.class(), CLASS_CONTROL);
        assert!(!p.is_data());
    }
}
