//! The simulation driver: owns the topology, node states, event queue and
//! the instrumentation hook, and dispatches events until a time horizon.

use crate::event::{EventKind, EventQueue};
use crate::faults::{FaultInjector, FaultPlan, FaultStats, ProbeFate};
use crate::hooks::{CpuNotification, SwitchHook};
use crate::host::{AgentConfig, Detection, HostConfig, HostState, PfcInjectorConfig};
use crate::ids::{FlowId, FlowKey, NodeId};
use crate::packet::Packet;
use crate::switch::{SwitchConfig, SwitchState};
use crate::time::Nanos;
use crate::topology::{NodeKind, Topology};

/// Global description of a flow (the simulator's registry; ground truth for
/// workloads and evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowMeta {
    pub id: FlowId,
    pub key: FlowKey,
    pub size_bytes: u64,
    pub start: Nanos,
}

/// Simulation-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    pub switch: SwitchConfig,
    pub host: HostConfig,
    /// Seed for all stochastic decisions (ECN marking); identical seeds
    /// reproduce identical runs.
    pub seed: u64,
    /// Control-plane fault injection; [`FaultPlan::none()`] (the default)
    /// is bit-for-bit identical to a run without fault injection.
    pub faults: FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            switch: SwitchConfig::default(),
            host: HostConfig::for_line_rate(100e9),
            seed: 1,
            faults: FaultPlan::none(),
        }
    }
}

// Both variants boxed: they live in one dense Vec and differ greatly in
// size (a host carries flow/agent state).
enum NodeState {
    Host(Box<HostState>),
    Switch(Box<SwitchState>),
}

/// A deterministic discrete-event simulation of an RDMA network with PFC.
pub struct Simulator<H: SwitchHook> {
    topo: Topology,
    nodes: Vec<NodeState>,
    queue: EventQueue,
    /// The monitoring system under test (Hawkeye or a baseline).
    pub hook: H,
    /// Probes mirrored to switch CPUs (drives telemetry collection).
    pub cpu_log: Vec<CpuNotification>,
    flows: Vec<FlowMeta>,
    faults: FaultInjector,
    started: bool,
}

impl<H: SwitchHook> Simulator<H> {
    pub fn new(topo: Topology, cfg: SimConfig, hook: H) -> Self {
        let mut nodes = Vec::with_capacity(topo.node_count());
        for i in 0..topo.node_count() as u32 {
            let id = NodeId(i);
            match topo.kind(id) {
                NodeKind::Host => {
                    nodes.push(NodeState::Host(Box::new(HostState::new(id, cfg.host))))
                }
                NodeKind::Switch => nodes.push(NodeState::Switch(Box::new(SwitchState::new(
                    id,
                    topo.ports(id).len(),
                    cfg.switch,
                    cfg.seed,
                )))),
            }
        }
        Simulator {
            topo,
            nodes,
            queue: EventQueue::new(),
            hook,
            cpu_log: Vec::new(),
            flows: Vec::new(),
            faults: FaultInjector::new(cfg.faults),
            started: false,
        }
    }

    /// The fault plan this simulation runs under.
    pub fn fault_plan(&self) -> FaultPlan {
        self.faults.plan
    }

    /// Probe-path faults injected so far (upload-path faults are counted
    /// by the collector, which owns its own stream).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.stats
    }

    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Mutable access to the topology (e.g. to install route overrides
    /// before starting).
    pub fn topo_mut(&mut self) -> &mut Topology {
        assert!(!self.started, "topology is frozen once the simulation runs");
        &mut self.topo
    }

    pub fn now(&self) -> Nanos {
        self.queue.now()
    }

    pub fn events_processed(&self) -> u64 {
        self.queue.processed()
    }

    /// Register a flow; must be called before the simulation starts.
    pub fn add_flow(&mut self, key: FlowKey, size_bytes: u64, start: Nanos) -> FlowId {
        self.add_flow_limited(key, size_bytes, start, None)
    }

    /// Register a flow with an application-level rate cap (bits/s).
    pub fn add_flow_limited(
        &mut self,
        key: FlowKey,
        size_bytes: u64,
        start: Nanos,
        max_rate_bps: Option<f64>,
    ) -> FlowId {
        self.add_flow_full(key, size_bytes, start, max_rate_bps, true)
    }

    /// Register a flow with a rate cap and a congestion-control compliance
    /// flag (non-compliant flows ignore CNPs).
    pub fn add_flow_full(
        &mut self,
        key: FlowKey,
        size_bytes: u64,
        start: Nanos,
        max_rate_bps: Option<f64>,
        cc_enabled: bool,
    ) -> FlowId {
        assert!(!self.started, "flows must be added before running");
        assert!(self.topo.is_host(key.src) && self.topo.is_host(key.dst));
        let id = FlowId(self.flows.len() as u32);
        self.flows.push(FlowMeta {
            id,
            key,
            size_bytes,
            start,
        });
        match &mut self.nodes[key.src.index()] {
            NodeState::Host(h) => {
                h.add_flow_full(id, key, size_bytes, start, max_rate_bps, cc_enabled);
            }
            NodeState::Switch(_) => unreachable!("flow source must be a host"),
        }
        id
    }

    pub fn flows(&self) -> &[FlowMeta] {
        &self.flows
    }

    pub fn flow(&self, id: FlowId) -> &FlowMeta {
        &self.flows[id.index()]
    }

    /// Enable the detection agent on every host.
    pub fn enable_agents(&mut self, agent: AgentConfig) {
        for n in &mut self.nodes {
            if let NodeState::Host(h) = n {
                h.set_agent(Some(agent));
            }
        }
    }

    /// Configure one host as a PFC injector (buggy NIC / slow receiver).
    pub fn set_pfc_injector(&mut self, host: NodeId, inj: PfcInjectorConfig) {
        match &mut self.nodes[host.index()] {
            NodeState::Host(h) => h.set_injector(Some(inj)),
            NodeState::Switch(_) => unreachable!(
                "invariant: injector targets come from GroundTruth.injection_host, \
                 which the scenario builder only assigns host ids ({host} is a switch)"
            ),
        }
    }

    /// Host accessor; `None` when `id` names a switch.
    pub fn try_host(&self, id: NodeId) -> Option<&HostState> {
        match &self.nodes[id.index()] {
            NodeState::Host(h) => Some(h),
            NodeState::Switch(_) => None,
        }
    }

    /// Switch accessor; `None` when `id` names a host.
    pub fn try_switch(&self, id: NodeId) -> Option<&SwitchState> {
        match &self.nodes[id.index()] {
            NodeState::Switch(s) => Some(s),
            NodeState::Host(_) => None,
        }
    }

    pub fn host(&self, id: NodeId) -> &HostState {
        self.try_host(id).unwrap_or_else(|| {
            unreachable!(
                "invariant: callers resolve host ids via Topology::hosts(); \
                 {id} is a switch — use try_host for mixed id sources"
            )
        })
    }

    pub fn switch(&self, id: NodeId) -> &SwitchState {
        self.try_switch(id).unwrap_or_else(|| {
            unreachable!(
                "invariant: callers resolve switch ids via Topology::switches(); \
                 {id} is a host — use try_switch for mixed id sources"
            )
        })
    }

    /// All anomaly detections reported by host agents so far.
    pub fn detections(&self) -> Vec<Detection> {
        let mut out = Vec::new();
        for n in &self.nodes {
            if let NodeState::Host(h) = n {
                out.extend_from_slice(&h.detections);
            }
        }
        out.sort_by_key(|d| (d.at, d.flow));
        out
    }

    fn bootstrap(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for n in &mut self.nodes {
            if let NodeState::Host(h) = n {
                h.bootstrap(&mut self.queue);
            }
        }
    }

    /// Run until the event queue empties or simulated time exceeds `until`.
    /// Returns the number of events processed by this call.
    pub fn run_until(&mut self, until: Nanos) -> u64 {
        self.bootstrap();
        let before = self.queue.processed();
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked");
            self.dispatch(now, ev);
        }
        self.queue.processed() - before
    }

    fn dispatch(&mut self, now: Nanos, ev: EventKind) {
        match ev {
            EventKind::Arrive { node, port, packet } => {
                // Copy the frame out of the pool, recycling its slot before
                // the handler can schedule the next hop into it.
                let pkt = self.queue.take_packet(packet);
                match &mut self.nodes[node.index()] {
                    NodeState::Switch(sw) => {
                        // Probe-path fault injection: only polling packets
                        // arriving at switches are eligible, and the
                        // injector is consulted only under an active plan.
                        if self.faults.probes_active() && matches!(pkt, Packet::Probe(_)) {
                            match self.faults.probe_arrival() {
                                ProbeFate::Deliver => {}
                                ProbeFate::Drop => return,
                                ProbeFate::Delay(d) => {
                                    self.queue.schedule_arrive(now + d, node, port, pkt);
                                    return;
                                }
                                ProbeFate::Duplicate(d) => {
                                    self.queue.schedule_arrive(now + d, node, port, pkt);
                                }
                            }
                        }
                        // A dead switch CPU loses any probe mirrored to it
                        // this arrival (the data-plane forwarding of the
                        // probe is unaffected).
                        let cpu_dead = self.faults.plan.cpu_fault.is_some()
                            && self.faults.plan.cpu_down(node, now);
                        let log_mark = self.cpu_log.len();
                        sw.handle_arrive(
                            port,
                            pkt,
                            now,
                            &mut self.queue,
                            &self.topo,
                            &mut self.hook,
                            &mut self.cpu_log,
                        );
                        if cpu_dead && self.cpu_log.len() > log_mark {
                            self.faults.stats.cpu_down_drops +=
                                (self.cpu_log.len() - log_mark) as u64;
                            self.cpu_log.truncate(log_mark);
                        }
                    }
                    NodeState::Host(h) => h.handle_arrive(pkt, now, &mut self.queue, &self.topo),
                }
            }
            EventKind::PortTxDone { node, port } => match &mut self.nodes[node.index()] {
                NodeState::Switch(sw) => sw.handle_tx_done(port, now, &mut self.queue, &self.topo),
                NodeState::Host(h) => h.handle_tx_done(now, &mut self.queue, &self.topo),
            },
            EventKind::PortKick { node, port } => match &mut self.nodes[node.index()] {
                NodeState::Switch(sw) => sw.try_tx(port, now, &mut self.queue, &self.topo),
                NodeState::Host(h) => h.try_tx(now, &mut self.queue, &self.topo),
            },
            EventKind::FlowStart { node, flow_idx } => {
                if let NodeState::Host(h) = &mut self.nodes[node.index()] {
                    h.handle_flow_start(flow_idx, now, &mut self.queue, &self.topo);
                }
            }
            EventKind::FlowReady { node, flow_idx } => {
                if let NodeState::Host(h) = &mut self.nodes[node.index()] {
                    h.handle_flow_ready(flow_idx, now, &mut self.queue, &self.topo);
                }
            }
            EventKind::DcqcnAlpha { node, flow_idx } => {
                if let NodeState::Host(h) = &mut self.nodes[node.index()] {
                    h.handle_dcqcn_alpha(flow_idx, now, &mut self.queue);
                }
            }
            EventKind::DcqcnIncrease { node, flow_idx } => {
                if let NodeState::Host(h) = &mut self.nodes[node.index()] {
                    h.handle_dcqcn_increase(flow_idx, now, &mut self.queue);
                }
            }
            EventKind::PfcRefresh { node, port } => {
                if let NodeState::Switch(sw) = &mut self.nodes[node.index()] {
                    sw.handle_pfc_refresh(port, now, &mut self.queue, &self.topo);
                }
            }
            EventKind::HostPfcInject { node } => {
                if let NodeState::Host(h) = &mut self.nodes[node.index()] {
                    h.handle_pfc_inject(now, &mut self.queue, &self.topo);
                }
            }
            EventKind::AgentCheck { node } => {
                if let NodeState::Host(h) = &mut self.nodes[node.index()] {
                    h.handle_agent_check(now, &mut self.queue, &self.topo);
                }
            }
            EventKind::ProbeRetry {
                node,
                flow_idx,
                attempt,
            } => {
                if let NodeState::Host(h) = &mut self.nodes[node.index()] {
                    h.handle_probe_retry(flow_idx, attempt, now, &mut self.queue, &self.topo);
                }
            }
        }
    }

    /// Fraction of registered flows that completed.
    pub fn completion_ratio(&self) -> f64 {
        if self.flows.is_empty() {
            return 1.0;
        }
        let done = self
            .flows
            .iter()
            .filter(|f| {
                self.host(f.key.src)
                    .flow_by_id(f.id)
                    .is_some_and(|hf| hf.is_done())
            })
            .count();
        done as f64 / self.flows.len() as f64
    }

    /// Sum of a per-switch statistic over all switches.
    pub fn sum_switch_stats(&self, f: impl Fn(&crate::switch::SwitchStats) -> u64) -> u64 {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                NodeState::Switch(s) => Some(f(&s.stats)),
                NodeState::Host(_) => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NullHook;
    use crate::packet::DATA_PKT_SIZE;
    use crate::topology::{dumbbell, EVAL_BANDWIDTH, EVAL_DELAY};

    fn two_host_sim() -> Simulator<NullHook> {
        let topo = dumbbell(2, 2, EVAL_BANDWIDTH, EVAL_DELAY);
        Simulator::new(topo, SimConfig::default(), NullHook)
    }

    #[test]
    fn single_flow_completes_with_expected_fct() {
        let mut sim = two_host_sim();
        let hosts: Vec<_> = sim.topo().hosts().collect();
        let key = FlowKey::roce(hosts[0], hosts[2], 11);
        let id = sim.add_flow(key, 1_000_000, Nanos::ZERO);
        sim.run_until(Nanos::from_millis(10));
        let hf = sim.host(hosts[0]).flow_by_id(id).unwrap();
        assert!(hf.is_done(), "flow should finish");
        let fct = hf.fct().unwrap();
        // 1 MB at 100 Gbps is 80 us serialization + ~3 hops of delay; FCT
        // must be close to that and certainly below 2x.
        assert!(fct >= Nanos::from_micros(80), "fct {fct}");
        assert!(fct < Nanos::from_micros(160), "fct {fct}");
    }

    #[test]
    fn incast_triggers_pfc_toward_senders() {
        // Both left hosts blast one right host at line rate: the shared
        // egress at swR congests; swR's ingress from swL fills; PFC frames
        // flow back. 4 MB each ensures Xoff (100 KB) is crossed.
        let mut sim = two_host_sim();
        let hosts: Vec<_> = sim.topo().hosts().collect();
        sim.add_flow(FlowKey::roce(hosts[0], hosts[2], 1), 4_000_000, Nanos::ZERO);
        sim.add_flow(FlowKey::roce(hosts[1], hosts[2], 2), 4_000_000, Nanos::ZERO);
        sim.run_until(Nanos::from_millis(5));
        let pauses = sim.sum_switch_stats(|s| s.pfc_pause_sent);
        assert!(pauses > 0, "incast must trigger PFC");
        assert_eq!(sim.sum_switch_stats(|s| s.drops_buffer), 0, "lossless");
        assert!(sim.completion_ratio() == 1.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut sim = two_host_sim();
            let hosts: Vec<_> = sim.topo().hosts().collect();
            sim.add_flow(FlowKey::roce(hosts[0], hosts[2], 1), 2_000_000, Nanos::ZERO);
            sim.add_flow(
                FlowKey::roce(hosts[1], hosts[2], 2),
                2_000_000,
                Nanos(5_000),
            );
            sim.add_flow(FlowKey::roce(hosts[3], hosts[1], 3), 500_000, Nanos(2_000));
            sim.run_until(Nanos::from_millis(5));
            let mut sig = Vec::new();
            for f in sim.flows().to_vec() {
                let hf = sim.host(f.key.src).flow_by_id(f.id).unwrap();
                sig.push((f.id, hf.completed_at));
            }
            (
                sig,
                sim.events_processed(),
                sim.sum_switch_stats(|s| s.data_pkts),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ecn_generates_cnps_and_slows_senders() {
        let mut sim = two_host_sim();
        let hosts: Vec<_> = sim.topo().hosts().collect();
        sim.add_flow(FlowKey::roce(hosts[0], hosts[2], 1), 8_000_000, Nanos::ZERO);
        sim.add_flow(FlowKey::roce(hosts[1], hosts[2], 2), 8_000_000, Nanos::ZERO);
        sim.run_until(Nanos::from_millis(5));
        let cnps: u64 = hosts.iter().map(|&h| sim.host(h).stats.cnps_rcvd).sum();
        assert!(cnps > 0, "sustained 2:1 incast must ECN-mark and CNP");
        // DCQCN must have cut below line rate at some point; final rates
        // may have recovered, so check CNP receipt plus lossless delivery.
        assert_eq!(sim.sum_switch_stats(|s| s.drops_buffer), 0);
    }

    #[test]
    fn agent_detects_congested_flow() {
        let mut sim = two_host_sim();
        let hosts: Vec<_> = sim.topo().hosts().collect();
        sim.enable_agents(AgentConfig {
            rtt_threshold_factor: 3.0,
            base_rtt: Nanos::from_micros(15),
            check_interval: Nanos::from_micros(100),
            dedup_interval: Nanos::from_millis(1),
            periodic_probe: None,
            retry: None,
        });
        // Heavy incast: the victim flow's packets queue behind PFC.
        for (i, &src) in [hosts[0], hosts[1], hosts[3]].iter().enumerate() {
            sim.add_flow(
                FlowKey::roce(src, hosts[2], i as u16),
                4_000_000,
                Nanos::ZERO,
            );
        }
        sim.run_until(Nanos::from_millis(5));
        assert!(
            !sim.detections().is_empty(),
            "sustained incast should trip the RTT threshold"
        );
    }

    #[test]
    fn pfc_injector_blocks_victims_network_wide() {
        let mut sim = two_host_sim();
        let hosts: Vec<_> = sim.topo().hosts().collect();
        // hosts[2] (right side) injects PFC continuously.
        sim.set_pfc_injector(
            hosts[2],
            PfcInjectorConfig {
                start: Nanos::from_micros(10),
                stop: Nanos::from_millis(4),
                period: Nanos::from_micros(100),
            },
        );
        // A flow toward the *other* right host shares swR ingress.
        let id = sim.add_flow(FlowKey::roce(hosts[0], hosts[2], 1), 2_000_000, Nanos::ZERO);
        sim.run_until(Nanos::from_millis(3));
        let hf = sim.host(hosts[0]).flow_by_id(id).unwrap();
        assert!(
            !hf.is_done(),
            "flow to the injecting host must be stalled by the storm"
        );
        // The ToR's egress toward the injector is paused.
        let swr = sim.topo().switches().nth(1).unwrap();
        let port_to_injector = (0..sim.topo().ports(swr).len() as u8)
            .find(|&p| sim.topo().peer(crate::ids::PortId::new(swr, p)).node == hosts[2])
            .unwrap();
        assert!(sim.switch(swr).egress_paused(port_to_injector, sim.now()));
    }

    #[test]
    fn flow_meta_accessors() {
        let mut sim = two_host_sim();
        let hosts: Vec<_> = sim.topo().hosts().collect();
        let key = FlowKey::roce(hosts[0], hosts[2], 11);
        let id = sim.add_flow(key, DATA_PKT_SIZE as u64, Nanos(500));
        assert_eq!(sim.flow(id).key, key);
        assert_eq!(sim.flows().len(), 1);
        assert_eq!(sim.flow(id).start, Nanos(500));
    }
}
