//! Network-wide run summaries: flow completion times, pause activity, and
//! delivered throughput — the operator-facing counters examples and
//! experiments report alongside diagnoses.
//!
//! Counter-valued fields are populated *through* a
//! [`MetricsRegistry`](hawkeye_obs::MetricsRegistry): [`RunSummary::of_with`]
//! first folds the simulator's hardware counters into the registry
//! ([`crate::observed::record_sim_metrics`]) and then reads the summary
//! numbers back out of it, so the registry snapshot and the summary can
//! never disagree.

use crate::hooks::SwitchHook;
use crate::sim::Simulator;
use crate::time::Nanos;
use hawkeye_obs::{MetricKey, MetricsRegistry};
use serde::{Deserialize, Serialize};

/// Nearest-rank percentile of an ascending-sorted slice: the smallest
/// element such that at least `q * 100` percent of the data is ≤ it
/// (rank `⌈q·n⌉`). `q` outside `(0, 1]` clamps to the extremes.
pub fn percentile_nearest_rank<T: Copy>(sorted: &[T], q: f64) -> Option<T> {
    if sorted.is_empty() {
        return None;
    }
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, n) - 1])
}

/// Aggregate statistics of a finished (or stopped) simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    pub flows_total: usize,
    pub flows_completed: usize,
    /// FCT percentiles over completed flows (p50, p90, p99, max).
    pub fct_p50: Option<Nanos>,
    pub fct_p90: Option<Nanos>,
    pub fct_p99: Option<Nanos>,
    pub fct_max: Option<Nanos>,
    /// Payload bytes delivered to receivers.
    pub bytes_delivered: u64,
    /// Aggregate goodput over the simulated horizon (bits/s).
    pub goodput_bps: f64,
    pub pfc_pauses_sent: u64,
    pub pfc_resumes_sent: u64,
    pub buffer_drops: u64,
    /// Packets discarded for lack of a route — nonzero means the topology
    /// or routing tables are wrong, never normal congestion.
    #[serde(default)]
    pub route_drops: u64,
    pub detections: usize,
}

impl RunSummary {
    /// Compute from a simulator after `run_until`.
    pub fn of<H: SwitchHook>(sim: &Simulator<H>) -> RunSummary {
        RunSummary::of_with(sim, &mut MetricsRegistry::new())
    }

    /// Compute from a simulator, folding every counter through `reg` (see
    /// module docs). The registry afterwards additionally holds per-switch
    /// breakdowns of the aggregated fields and an `fct_ns` histogram.
    pub fn of_with<H: SwitchHook>(sim: &Simulator<H>, reg: &mut MetricsRegistry) -> RunSummary {
        crate::observed::record_sim_metrics(sim, reg);

        let mut fcts: Vec<Nanos> = Vec::new();
        for f in sim.flows() {
            reg.inc(MetricKey::global("flows_total"));
            if let Some(hf) = sim.host(f.key.src).flow_by_id(f.id) {
                if let Some(fct) = hf.fct() {
                    reg.inc(MetricKey::global("flows_completed"));
                    reg.observe(MetricKey::global("fct_ns"), fct.as_nanos());
                    fcts.push(fct);
                }
            }
        }
        fcts.sort_unstable();

        let data_rcvd = reg.counter_total("host_data_rcvd");
        let bytes_delivered = data_rcvd * crate::packet::DATA_PAYLOAD as u64;
        reg.add(MetricKey::global("bytes_delivered"), bytes_delivered);
        let horizon = sim.now().as_secs_f64().max(1e-12);
        let goodput_bps = bytes_delivered as f64 * 8.0 / horizon;
        reg.set(MetricKey::global("goodput_bps"), goodput_bps);

        RunSummary {
            flows_total: reg.counter(&MetricKey::global("flows_total")) as usize,
            flows_completed: reg.counter(&MetricKey::global("flows_completed")) as usize,
            fct_p50: percentile_nearest_rank(&fcts, 0.50),
            fct_p90: percentile_nearest_rank(&fcts, 0.90),
            fct_p99: percentile_nearest_rank(&fcts, 0.99),
            fct_max: fcts.last().copied(),
            bytes_delivered: reg.counter(&MetricKey::global("bytes_delivered")),
            goodput_bps,
            pfc_pauses_sent: reg.counter_total("pfc_pause_sent"),
            pfc_resumes_sent: reg.counter_total("pfc_resume_sent"),
            buffer_drops: reg.counter_total("drops_buffer"),
            route_drops: reg.counter_total("drops_no_route"),
            detections: reg.counter(&MetricKey::global("detections")) as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NullHook;
    use crate::ids::FlowKey;
    use crate::sim::SimConfig;
    use crate::topology::{dumbbell, EVAL_BANDWIDTH, EVAL_DELAY};

    #[test]
    fn summary_of_simple_run() {
        let topo = dumbbell(2, 2, EVAL_BANDWIDTH, EVAL_DELAY);
        let hosts: Vec<_> = topo.hosts().collect();
        let mut sim = Simulator::new(topo, SimConfig::default(), NullHook);
        sim.add_flow(FlowKey::roce(hosts[0], hosts[2], 1), 1_000_000, Nanos::ZERO);
        sim.add_flow(FlowKey::roce(hosts[1], hosts[3], 2), 500_000, Nanos::ZERO);
        sim.run_until(Nanos::from_millis(5));
        let s = RunSummary::of(&sim);
        assert_eq!(s.flows_total, 2);
        assert_eq!(s.flows_completed, 2);
        assert_eq!(s.bytes_delivered, 1_500_000);
        assert!(s.goodput_bps > 0.0);
        assert!(s.fct_p50.unwrap() <= s.fct_max.unwrap());
        assert_eq!(s.buffer_drops, 0);
        // JSON round-trip for reporting (floats within printing precision).
        let js = serde_json::to_string(&s).unwrap();
        let back: RunSummary = serde_json::from_str(&js).unwrap();
        assert_eq!(back.flows_completed, s.flows_completed);
        assert_eq!(back.fct_max, s.fct_max);
        assert!((back.goodput_bps - s.goodput_bps).abs() / s.goodput_bps < 1e-9);
    }

    #[test]
    fn incomplete_flows_have_no_fct() {
        let topo = dumbbell(1, 1, EVAL_BANDWIDTH, EVAL_DELAY);
        let hosts: Vec<_> = topo.hosts().collect();
        let mut sim = Simulator::new(topo, SimConfig::default(), NullHook);
        sim.add_flow(
            FlowKey::roce(hosts[0], hosts[1], 1),
            100_000_000,
            Nanos::ZERO,
        );
        sim.run_until(Nanos::from_micros(50)); // far too short
        let s = RunSummary::of(&sim);
        assert_eq!(s.flows_completed, 0);
        assert!(s.fct_p50.is_none());
        assert!(s.flows_total == 1);
    }

    #[test]
    fn summary_agrees_with_registry_snapshot() {
        let topo = dumbbell(2, 2, EVAL_BANDWIDTH, EVAL_DELAY);
        let hosts: Vec<_> = topo.hosts().collect();
        let mut sim = Simulator::new(topo, SimConfig::default(), NullHook);
        sim.add_flow(FlowKey::roce(hosts[0], hosts[2], 1), 200_000, Nanos::ZERO);
        sim.run_until(Nanos::from_millis(3));
        let mut reg = MetricsRegistry::new();
        let s = RunSummary::of_with(&sim, &mut reg);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("flows_completed"),
            Some(s.flows_completed as u64)
        );
        assert_eq!(snap.counter("bytes_delivered"), Some(s.bytes_delivered));
        assert_eq!(snap.gauge("goodput_bps"), Some(s.goodput_bps));
        // The per-flow FCT histogram holds one sample per completed flow.
        let hist = snap.histograms.iter().find(|h| h.key == "fct_ns").unwrap();
        assert_eq!(hist.count, s.flows_completed as u64);
    }

    // --- percentile semantics -------------------------------------------

    #[test]
    fn percentile_empty_is_none() {
        assert_eq!(percentile_nearest_rank::<u64>(&[], 0.5), None);
    }

    #[test]
    fn percentile_single_element_is_that_element() {
        for q in [0.01, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(percentile_nearest_rank(&[7u64], q), Some(7));
        }
    }

    #[test]
    fn percentile_two_elements() {
        // Nearest-rank: p50 of {1, 2} is rank ⌈0.5·2⌉ = 1 → the 1st element;
        // p90/p99 are rank 2 → the 2nd.
        let v = [1u64, 2];
        assert_eq!(percentile_nearest_rank(&v, 0.50), Some(1));
        assert_eq!(percentile_nearest_rank(&v, 0.90), Some(2));
        assert_eq!(percentile_nearest_rank(&v, 0.99), Some(2));
    }

    #[test]
    fn percentile_nearest_rank_textbook_case() {
        // Classic nearest-rank example: n = 5.
        let v = [15u64, 20, 35, 40, 50];
        assert_eq!(percentile_nearest_rank(&v, 0.05), Some(15));
        assert_eq!(percentile_nearest_rank(&v, 0.30), Some(20));
        assert_eq!(percentile_nearest_rank(&v, 0.40), Some(20));
        assert_eq!(percentile_nearest_rank(&v, 0.50), Some(35));
        assert_eq!(percentile_nearest_rank(&v, 1.00), Some(50));
    }

    #[test]
    fn percentile_p99_distinguishes_tail_from_max() {
        // 200 elements: p99 is rank 198, not the max — the old
        // `(n-1)*q as usize` truncation under-selected the tail.
        let v: Vec<u64> = (1..=200).collect();
        assert_eq!(percentile_nearest_rank(&v, 0.99), Some(198));
        assert_eq!(percentile_nearest_rank(&v, 0.50), Some(100));
        assert_eq!(percentile_nearest_rank(&v, 1.0), Some(200));
    }
}
