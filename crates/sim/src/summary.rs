//! Network-wide run summaries: flow completion times, pause activity, and
//! delivered throughput — the operator-facing counters examples and
//! experiments report alongside diagnoses.

use crate::hooks::SwitchHook;
use crate::sim::Simulator;
use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of a finished (or stopped) simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    pub flows_total: usize,
    pub flows_completed: usize,
    /// FCT percentiles over completed flows (p50, p90, p99, max).
    pub fct_p50: Option<Nanos>,
    pub fct_p90: Option<Nanos>,
    pub fct_p99: Option<Nanos>,
    pub fct_max: Option<Nanos>,
    /// Payload bytes delivered to receivers.
    pub bytes_delivered: u64,
    /// Aggregate goodput over the simulated horizon (bits/s).
    pub goodput_bps: f64,
    pub pfc_pauses_sent: u64,
    pub pfc_resumes_sent: u64,
    pub buffer_drops: u64,
    pub detections: usize,
}

impl RunSummary {
    /// Compute from a simulator after `run_until`.
    pub fn of<H: SwitchHook>(sim: &Simulator<H>) -> RunSummary {
        let mut fcts: Vec<Nanos> = Vec::new();
        let mut completed = 0usize;
        for f in sim.flows() {
            if let Some(hf) = sim.host(f.key.src).flow_by_id(f.id) {
                if let Some(fct) = hf.fct() {
                    completed += 1;
                    fcts.push(fct);
                }
            }
        }
        fcts.sort_unstable();
        let pct = |q: f64| -> Option<Nanos> {
            if fcts.is_empty() {
                None
            } else {
                Some(fcts[((fcts.len() - 1) as f64 * q) as usize])
            }
        };
        let data_rcvd: u64 = sim
            .topo()
            .hosts()
            .map(|h| sim.host(h).stats.data_rcvd)
            .sum();
        let bytes_delivered = data_rcvd * crate::packet::DATA_PAYLOAD as u64;
        let horizon = sim.now().as_secs_f64().max(1e-12);
        RunSummary {
            flows_total: sim.flows().len(),
            flows_completed: completed,
            fct_p50: pct(0.50),
            fct_p90: pct(0.90),
            fct_p99: pct(0.99),
            fct_max: fcts.last().copied(),
            bytes_delivered,
            goodput_bps: bytes_delivered as f64 * 8.0 / horizon,
            pfc_pauses_sent: sim.sum_switch_stats(|s| s.pfc_pause_sent),
            pfc_resumes_sent: sim.sum_switch_stats(|s| s.pfc_resume_sent),
            buffer_drops: sim.sum_switch_stats(|s| s.drops_buffer),
            detections: sim.detections().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NullHook;
    use crate::ids::FlowKey;
    use crate::sim::SimConfig;
    use crate::topology::{dumbbell, EVAL_BANDWIDTH, EVAL_DELAY};

    #[test]
    fn summary_of_simple_run() {
        let topo = dumbbell(2, 2, EVAL_BANDWIDTH, EVAL_DELAY);
        let hosts: Vec<_> = topo.hosts().collect();
        let mut sim = Simulator::new(topo, SimConfig::default(), NullHook);
        sim.add_flow(FlowKey::roce(hosts[0], hosts[2], 1), 1_000_000, Nanos::ZERO);
        sim.add_flow(FlowKey::roce(hosts[1], hosts[3], 2), 500_000, Nanos::ZERO);
        sim.run_until(Nanos::from_millis(5));
        let s = RunSummary::of(&sim);
        assert_eq!(s.flows_total, 2);
        assert_eq!(s.flows_completed, 2);
        assert_eq!(s.bytes_delivered, 1_500_000);
        assert!(s.goodput_bps > 0.0);
        assert!(s.fct_p50.unwrap() <= s.fct_max.unwrap());
        assert_eq!(s.buffer_drops, 0);
        // JSON round-trip for reporting (floats within printing precision).
        let js = serde_json::to_string(&s).unwrap();
        let back: RunSummary = serde_json::from_str(&js).unwrap();
        assert_eq!(back.flows_completed, s.flows_completed);
        assert_eq!(back.fct_max, s.fct_max);
        assert!((back.goodput_bps - s.goodput_bps).abs() / s.goodput_bps < 1e-9);
    }

    #[test]
    fn incomplete_flows_have_no_fct() {
        let topo = dumbbell(1, 1, EVAL_BANDWIDTH, EVAL_DELAY);
        let hosts: Vec<_> = topo.hosts().collect();
        let mut sim = Simulator::new(topo, SimConfig::default(), NullHook);
        sim.add_flow(FlowKey::roce(hosts[0], hosts[1], 1), 100_000_000, Nanos::ZERO);
        sim.run_until(Nanos::from_micros(50)); // far too short
        let s = RunSummary::of(&sim);
        assert_eq!(s.flows_completed, 0);
        assert!(s.fct_p50.is_none());
        assert!(s.flows_total == 1);
    }
}
