//! Shared-buffer switch with ingress-accounted PFC, strict-priority control
//! class, ECN (RED) marking, and instrumentation hooks.
//!
//! PFC model (IEEE 802.1Qbb, as deployed for RoCEv2):
//! - Each arriving data packet is charged to the *ingress* port it arrived
//!   on. When an ingress port's usage crosses `xoff`, the switch sends a
//!   PAUSE frame upstream out of that port and keeps refreshing it until
//!   usage drops below `xon`, when it sends RESUME.
//! - A PAUSE frame *received* on a port stops the data class of that port's
//!   egress side for the quanta-derived duration. The control class
//!   (ACK/CNP/PFC/polling packets) is never paused.
//!
//! This is the mechanism by which congestion cascades hop by hop (§2), and
//! with a cyclic buffer dependency, deadlocks.

use crate::event::{EventKind, EventQueue};
use crate::hooks::{CpuNotification, EnqueueRecord, PfcEvent, SwitchHook, SwitchView};
use crate::ids::NodeId;
use crate::packet::{DataPacket, Packet, PfcFrame, CLASS_DATA};
use crate::time::Nanos;
use crate::topology::Topology;
use crate::units::quanta_to_pause_time;
use std::collections::VecDeque;

/// Switch buffer / PFC / ECN configuration.
#[derive(Debug, Clone, Copy)]
pub struct SwitchConfig {
    /// Per-ingress-port PFC pause threshold (bytes).
    pub xoff_bytes: u64,
    /// Per-ingress-port PFC resume threshold (bytes); must be < xoff.
    pub xon_bytes: u64,
    /// RED/ECN min threshold on egress data queue (bytes).
    pub ecn_kmin: u64,
    /// RED/ECN max threshold (bytes).
    pub ecn_kmax: u64,
    /// RED/ECN max marking probability at kmax.
    pub ecn_pmax: f64,
    /// Total shared data buffer (bytes); tail-drop beyond this (with sane
    /// PFC settings this never engages — drops are a reportable bug signal).
    pub buffer_bytes: u64,
    /// Quanta carried in PAUSE frames (0xFFFF = ~335 µs at 100 Gbps).
    pub pause_quanta: u16,
    /// Interval at which an above-xon ingress port re-sends PAUSE.
    pub pfc_refresh: Nanos,
    /// Master PFC switch (off = lossy network, for ablations).
    pub pfc_enabled: bool,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            xoff_bytes: 100 * 1024,
            xon_bytes: 80 * 1024,
            ecn_kmin: 40 * 1024,
            ecn_kmax: 160 * 1024,
            ecn_pmax: 0.2,
            buffer_bytes: 24 * 1024 * 1024,
            pause_quanta: u16::MAX,
            pfc_refresh: Nanos::from_micros(200),
            pfc_enabled: true,
        }
    }
}

/// Aggregate per-switch counters (sanity checks and overhead accounting).
#[derive(Debug, Clone, Copy, Default)]
pub struct SwitchStats {
    pub data_pkts: u64,
    pub data_bytes: u64,
    pub ctrl_pkts: u64,
    pub pfc_pause_sent: u64,
    pub pfc_resume_sent: u64,
    pub pfc_pause_recv: u64,
    pub probes_seen: u64,
    pub probes_emitted: u64,
    pub drops_no_route: u64,
    pub drops_buffer: u64,
}

#[derive(Debug)]
struct EgressPort {
    ctrl: VecDeque<Packet>,
    data: VecDeque<(DataPacket, u8)>,
    data_bytes: u64,
    busy: bool,
    /// Data class transmission blocked until this instant (PFC pause).
    pause_until: Nanos,
}

impl EgressPort {
    fn new() -> Self {
        EgressPort {
            ctrl: VecDeque::new(),
            data: VecDeque::new(),
            data_bytes: 0,
            busy: false,
            pause_until: Nanos::ZERO,
        }
    }
}

/// Runtime state of one switch.
#[derive(Debug)]
pub struct SwitchState {
    pub id: NodeId,
    cfg: SwitchConfig,
    ports: Vec<EgressPort>,
    /// Bytes of buffered data charged to each ingress port.
    ingress_usage: Vec<u64>,
    /// Whether we currently hold the upstream of this ingress port paused.
    upstream_paused: Vec<bool>,
    total_data_bytes: u64,
    rng: u64,
    pub stats: SwitchStats,
}

impl SwitchState {
    pub fn new(id: NodeId, nports: usize, cfg: SwitchConfig, seed: u64) -> Self {
        SwitchState {
            id,
            cfg,
            ports: (0..nports).map(|_| EgressPort::new()).collect(),
            ingress_usage: vec![0; nports],
            upstream_paused: vec![false; nports],
            total_data_bytes: 0,
            rng: seed ^ 0x243F_6A88_85A3_08D3 ^ ((id.0 as u64) << 32) | 1,
            stats: SwitchStats::default(),
        }
    }

    /// Ground truth: is the data class of `port`'s egress paused right now?
    pub fn egress_paused(&self, port: u8, now: Nanos) -> bool {
        self.ports[port as usize].pause_until > now
    }

    /// Current data-queue length of `port` in packets.
    pub fn queue_pkts(&self, port: u8) -> usize {
        self.ports[port as usize].data.len()
    }

    /// Current data-queue length of `port` in bytes.
    pub fn queue_bytes(&self, port: u8) -> u64 {
        self.ports[port as usize].data_bytes
    }

    pub fn ingress_usage(&self, port: u8) -> u64 {
        self.ingress_usage[port as usize]
    }

    fn next_rand(&mut self) -> f64 {
        // xorshift64*; plenty for RED marking decisions.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// RED marking decision for a data queue currently `qbytes` deep.
    fn ecn_mark(&mut self, qbytes: u64) -> bool {
        if qbytes <= self.cfg.ecn_kmin {
            false
        } else if qbytes >= self.cfg.ecn_kmax {
            true
        } else {
            let p = self.cfg.ecn_pmax * (qbytes - self.cfg.ecn_kmin) as f64
                / (self.cfg.ecn_kmax - self.cfg.ecn_kmin) as f64;
            self.next_rand() < p
        }
    }

    /// A frame arrived at `in_port`.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_arrive(
        &mut self,
        in_port: u8,
        pkt: Packet,
        now: Nanos,
        q: &mut EventQueue,
        topo: &Topology,
        hook: &mut dyn SwitchHook,
        cpu_log: &mut Vec<CpuNotification>,
    ) {
        match pkt {
            Packet::Data(d) => self.handle_data(in_port, d, now, q, topo, hook),
            Packet::Pfc(f) => self.handle_pfc(in_port, f, now, q, topo, hook),
            Packet::Probe(p) => {
                self.stats.probes_seen += 1;
                let view = SwitchView {
                    topo,
                    switch: self.id,
                };
                let decision = hook.on_probe(self.id, in_port, p, &view, now);
                if decision.mirror_to_cpu {
                    cpu_log.push(CpuNotification {
                        switch: self.id,
                        probe: p,
                        at: now,
                    });
                }
                for (out, probe) in decision.emit {
                    self.stats.probes_emitted += 1;
                    self.enqueue_ctrl(out, Packet::Probe(probe), now, q, topo);
                }
            }
            other @ (Packet::Ack(_) | Packet::Cnp(_)) => {
                // Control packets route by their own 5-tuple (constructed
                // reversed by the receiver NIC).
                let key = match other {
                    Packet::Ack(a) => a.key,
                    Packet::Cnp(c) => c.key,
                    _ => unreachable!(),
                };
                match topo.route_port(self.id, &key) {
                    Some(out) => {
                        self.stats.ctrl_pkts += 1;
                        self.enqueue_ctrl(out, other, now, q, topo);
                    }
                    None => self.stats.drops_no_route += 1,
                }
            }
        }
    }

    fn handle_data(
        &mut self,
        in_port: u8,
        mut d: DataPacket,
        now: Nanos,
        q: &mut EventQueue,
        topo: &Topology,
        hook: &mut dyn SwitchHook,
    ) {
        let Some(out) = topo.route_port(self.id, &d.key) else {
            self.stats.drops_no_route += 1;
            return;
        };
        if self.total_data_bytes + d.size as u64 > self.cfg.buffer_bytes {
            // With PFC on, upstream pause thresholds are sized to fire
            // before the shared buffer fills — a lossless fabric dropping
            // for buffer means the headroom model is miscalibrated.
            debug_assert!(
                !self.cfg.pfc_enabled,
                "buffer drop on PFC-enabled switch {:?} (lossless fabric \
                 should have paused upstream first)",
                self.id
            );
            self.stats.drops_buffer += 1;
            return;
        }
        // ECN congestion point: mark against the egress queue depth.
        let qbytes = self.ports[out as usize].data_bytes;
        if self.ecn_mark(qbytes) {
            d.ecn_ce = true;
        }

        let ep = &self.ports[out as usize];
        let rec = EnqueueRecord {
            switch: self.id,
            in_port,
            out_port: out,
            flow: d.flow,
            key: d.key,
            size: d.size,
            qdepth_pkts: ep.data.len() as u32,
            qdepth_bytes: ep.data_bytes,
            egress_paused: ep.pause_until > now,
            timestamp: now,
        };
        hook.on_data_enqueue(&rec);

        self.stats.data_pkts += 1;
        self.stats.data_bytes += d.size as u64;
        let size = d.size as u64;
        let ep = &mut self.ports[out as usize];
        ep.data.push_back((d, in_port));
        ep.data_bytes += size;
        self.total_data_bytes += size;
        self.ingress_usage[in_port as usize] += size;

        // PFC generation: ingress usage crossed Xoff.
        if self.cfg.pfc_enabled
            && !self.upstream_paused[in_port as usize]
            && self.ingress_usage[in_port as usize] > self.cfg.xoff_bytes
        {
            self.send_pause(in_port, now, q, topo);
        }

        self.try_tx(out, now, q, topo);
    }

    fn send_pause(&mut self, in_port: u8, now: Nanos, q: &mut EventQueue, topo: &Topology) {
        self.upstream_paused[in_port as usize] = true;
        self.stats.pfc_pause_sent += 1;
        self.enqueue_ctrl(
            in_port,
            Packet::Pfc(PfcFrame {
                class: CLASS_DATA,
                quanta: self.cfg.pause_quanta,
            }),
            now,
            q,
            topo,
        );
        q.schedule_in(
            self.cfg.pfc_refresh,
            EventKind::PfcRefresh {
                node: self.id,
                port: in_port,
            },
        );
    }

    fn send_resume(&mut self, in_port: u8, now: Nanos, q: &mut EventQueue, topo: &Topology) {
        self.upstream_paused[in_port as usize] = false;
        self.stats.pfc_resume_sent += 1;
        self.enqueue_ctrl(
            in_port,
            Packet::Pfc(PfcFrame::resume(CLASS_DATA)),
            now,
            q,
            topo,
        );
    }

    /// Periodic re-evaluation of an ingress port we paused earlier.
    pub fn handle_pfc_refresh(
        &mut self,
        port: u8,
        now: Nanos,
        q: &mut EventQueue,
        topo: &Topology,
    ) {
        if !self.upstream_paused[port as usize] {
            return;
        }
        if self.ingress_usage[port as usize] > self.cfg.xon_bytes {
            // Keep the upstream paused: refresh before the quanta expire.
            self.stats.pfc_pause_sent += 1;
            self.enqueue_ctrl(
                port,
                Packet::Pfc(PfcFrame {
                    class: CLASS_DATA,
                    quanta: self.cfg.pause_quanta,
                }),
                now,
                q,
                topo,
            );
            q.schedule_in(
                self.cfg.pfc_refresh,
                EventKind::PfcRefresh {
                    node: self.id,
                    port,
                },
            );
        } else {
            self.send_resume(port, now, q, topo);
        }
    }

    fn handle_pfc(
        &mut self,
        port: u8,
        f: PfcFrame,
        now: Nanos,
        q: &mut EventQueue,
        topo: &Topology,
        hook: &mut dyn SwitchHook,
    ) {
        let bw = topo.port(crate::ids::PortId::new(self.id, port)).bandwidth;
        let dur = quanta_to_pause_time(f.quanta, bw);
        hook.on_pfc_frame(&PfcEvent {
            switch: self.id,
            port,
            class: f.class,
            pause: f.is_pause(),
            pause_time: dur,
            now,
        });
        if f.class != CLASS_DATA {
            return;
        }
        if f.is_pause() {
            self.stats.pfc_pause_recv += 1;
            self.ports[port as usize].pause_until = now + dur;
            q.schedule(
                now + dur,
                EventKind::PortKick {
                    node: self.id,
                    port,
                },
            );
        } else {
            self.ports[port as usize].pause_until = now;
            self.try_tx(port, now, q, topo);
        }
    }

    fn enqueue_ctrl(
        &mut self,
        out: u8,
        pkt: Packet,
        now: Nanos,
        q: &mut EventQueue,
        topo: &Topology,
    ) {
        self.ports[out as usize].ctrl.push_back(pkt);
        self.try_tx(out, now, q, topo);
    }

    /// Try to start transmitting on `port`.
    ///
    /// Strict priority: control frames first; data only while the port's
    /// pause timer is expired. The port is marked busy *before* any
    /// side-effect that could re-enter `try_tx` (e.g. the RESUME a data
    /// dequeue may trigger), so a port never double-transmits.
    pub fn try_tx(&mut self, port: u8, now: Nanos, q: &mut EventQueue, topo: &Topology) {
        let pi = port as usize;
        let info = *topo.port(crate::ids::PortId::new(self.id, port));
        if self.ports[pi].busy {
            return;
        }
        let mut resume_ingress: Option<u8> = None;
        let pkt: Packet = if let Some(p) = self.ports[pi].ctrl.pop_front() {
            p
        } else if self.ports[pi].pause_until <= now {
            match self.ports[pi].data.pop_front() {
                Some((d, ing)) => {
                    let size = d.size as u64;
                    self.ports[pi].data_bytes -= size;
                    self.total_data_bytes -= size;
                    self.ingress_usage[ing as usize] -= size;
                    if self.ingress_usage[ing as usize] <= self.cfg.xon_bytes
                        && self.upstream_paused[ing as usize]
                    {
                        resume_ingress = Some(ing);
                    }
                    Packet::Data(d)
                }
                None => return,
            }
        } else {
            return;
        };

        self.ports[pi].busy = true;
        let tx = info.bandwidth.tx_time(pkt.size());
        q.schedule(
            now + tx,
            EventKind::PortTxDone {
                node: self.id,
                port,
            },
        );
        q.schedule_arrive(now + tx + info.delay, info.peer.node, info.peer.port, pkt);
        if let Some(ing) = resume_ingress {
            self.send_resume(ing, now, q, topo);
        }
    }

    /// The port finished serializing its current frame.
    pub fn handle_tx_done(&mut self, port: u8, now: Nanos, q: &mut EventQueue, topo: &Topology) {
        self.ports[port as usize].busy = false;
        self.try_tx(port, now, q, topo);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NullHook;
    use crate::ids::{FlowId, FlowKey};
    use crate::packet::DATA_PKT_SIZE;
    use crate::topology::{dumbbell, EVAL_BANDWIDTH, EVAL_DELAY};

    fn data_pkt(key: FlowKey, seq: u64) -> DataPacket {
        DataPacket {
            flow: FlowId(0),
            key,
            seq,
            size: DATA_PKT_SIZE,
            ecn_ce: false,
            sent_at: Nanos::ZERO,
            last: false,
        }
    }

    /// Drive enough packets into a switch ingress to cross Xoff and check a
    /// PAUSE frame is emitted upstream, then drain and expect RESUME.
    #[test]
    fn pfc_pause_and_resume_cycle() {
        let topo = dumbbell(1, 1, EVAL_BANDWIDTH, EVAL_DELAY);
        let swl = topo.switches().next().unwrap();
        let hosts: Vec<_> = topo.hosts().collect();
        let key = FlowKey::roce(hosts[0], hosts[1], 7);
        let mut q = EventQueue::new();
        let mut hook = NullHook;
        let mut cpu = Vec::new();
        let mut sw = SwitchState::new(swl, topo.ports(swl).len(), SwitchConfig::default(), 1);

        // Pause the egress toward swR so the queue builds.
        sw.handle_arrive(
            1,
            Packet::Pfc(PfcFrame::pause(CLASS_DATA)),
            Nanos::ZERO,
            &mut q,
            &topo,
            &mut hook,
            &mut cpu,
        );
        assert!(sw.egress_paused(1, Nanos(1)));

        // Feed data from the host port (port 0) until Xoff crossed.
        let pkts_to_xoff = (SwitchConfig::default().xoff_bytes / DATA_PKT_SIZE as u64) + 2;
        for i in 0..pkts_to_xoff {
            sw.handle_arrive(
                0,
                Packet::Data(data_pkt(key, i)),
                Nanos(10),
                &mut q,
                &topo,
                &mut hook,
                &mut cpu,
            );
        }
        assert_eq!(sw.stats.pfc_pause_sent, 1, "exactly one PAUSE upstream");
        assert!(sw.ingress_usage(0) > SwitchConfig::default().xoff_bytes);

        // Resume the egress; drain by processing tx-done events.
        sw.handle_arrive(
            1,
            Packet::Pfc(PfcFrame::resume(CLASS_DATA)),
            Nanos(20),
            &mut q,
            &topo,
            &mut hook,
            &mut cpu,
        );
        let mut resumed = false;
        while let Some((t, ev)) = q.pop() {
            match ev {
                EventKind::PortTxDone { port, .. } => {
                    sw.handle_tx_done(port, t, &mut q, &topo);
                }
                EventKind::PortKick { port, .. } => sw.try_tx(port, t, &mut q, &topo),
                EventKind::PfcRefresh { port, .. } => sw.handle_pfc_refresh(port, t, &mut q, &topo),
                EventKind::Arrive { .. } => {} // delivered elsewhere
                _ => {}
            }
            if sw.stats.pfc_resume_sent > 0 {
                resumed = true;
            }
        }
        assert!(resumed, "RESUME must follow once usage drops below Xon");
        assert_eq!(sw.queue_pkts(1), 0, "queue fully drained");
        assert_eq!(sw.ingress_usage(0), 0);
    }

    #[test]
    fn control_class_bypasses_pause() {
        let topo = dumbbell(1, 1, EVAL_BANDWIDTH, EVAL_DELAY);
        let swl = topo.switches().next().unwrap();
        let hosts: Vec<_> = topo.hosts().collect();
        let mut q = EventQueue::new();
        let mut hook = NullHook;
        let mut cpu = Vec::new();
        let mut sw = SwitchState::new(swl, topo.ports(swl).len(), SwitchConfig::default(), 1);

        // Pause egress port 1, then push an ACK through it.
        sw.handle_arrive(
            1,
            Packet::Pfc(PfcFrame::pause(CLASS_DATA)),
            Nanos::ZERO,
            &mut q,
            &topo,
            &mut hook,
            &mut cpu,
        );
        let rkey = FlowKey::roce(hosts[1], hosts[0], 7);
        // ACK destined to host r0 must leave via port 1 even while paused.
        let ack = Packet::Ack(crate::packet::AckPacket {
            flow: FlowId(0),
            key: FlowKey::roce(hosts[0], hosts[1], 7),
            seq: 0,
            echo_sent_at: Nanos::ZERO,
            last: false,
        });
        // Rewrite: the ACK's own key routes it; use reversed key.
        let ack = match ack {
            Packet::Ack(mut a) => {
                a.key = rkey;
                Packet::Ack(a)
            }
            _ => unreachable!(),
        };
        sw.handle_arrive(0, ack, Nanos(5), &mut q, &topo, &mut hook, &mut cpu);
        // The ACK was enqueued on the paused port and tx started.
        let evs: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert!(
            evs.iter().any(|(_, e)| matches!(
                e,
                EventKind::Arrive { packet, .. } if matches!(q.packet(*packet), Packet::Ack(_))
            )),
            "ACK must be serialized despite data-class pause"
        );
    }

    #[test]
    fn ecn_marks_above_kmax_never_below_kmin() {
        let topo = dumbbell(1, 1, EVAL_BANDWIDTH, EVAL_DELAY);
        let swl = topo.switches().next().unwrap();
        let mut sw = SwitchState::new(swl, topo.ports(swl).len(), SwitchConfig::default(), 1);
        assert!(!sw.ecn_mark(0));
        assert!(!sw.ecn_mark(SwitchConfig::default().ecn_kmin));
        assert!(sw.ecn_mark(SwitchConfig::default().ecn_kmax));
        assert!(sw.ecn_mark(10 * 1024 * 1024));
    }

    #[test]
    fn buffer_overflow_drops() {
        let topo = dumbbell(1, 1, EVAL_BANDWIDTH, EVAL_DELAY);
        let swl = topo.switches().next().unwrap();
        let hosts: Vec<_> = topo.hosts().collect();
        let key = FlowKey::roce(hosts[0], hosts[1], 7);
        let cfg = SwitchConfig {
            buffer_bytes: 3 * DATA_PKT_SIZE as u64,
            pfc_enabled: false,
            ..Default::default()
        };
        let mut q = EventQueue::new();
        let mut hook = NullHook;
        let mut cpu = Vec::new();
        let mut sw = SwitchState::new(swl, topo.ports(swl).len(), cfg, 1);
        // Pause the egress so nothing drains.
        sw.handle_arrive(
            1,
            Packet::Pfc(PfcFrame::pause(CLASS_DATA)),
            Nanos::ZERO,
            &mut q,
            &topo,
            &mut hook,
            &mut cpu,
        );
        for i in 0..5 {
            sw.handle_arrive(
                0,
                Packet::Data(data_pkt(key, i)),
                Nanos(1),
                &mut q,
                &topo,
                &mut hook,
                &mut cpu,
            );
        }
        assert!(sw.stats.drops_buffer > 0);
    }
}
