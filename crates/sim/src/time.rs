//! Simulation time.
//!
//! All simulation time is kept in integer nanoseconds, mirroring the 48-bit
//! nanosecond timestamps that programmable switches attach to enqueued
//! packets (the paper slices bits out of exactly this timestamp to index
//! telemetry epochs, see `hawkeye-telemetry::epoch`).

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
///
/// `Nanos` is also used for durations; the arithmetic provided is the small
/// saturating subset the simulator needs, so overflow bugs surface as test
/// failures rather than wrap-arounds.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct Nanos(pub u64);

impl Nanos {
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable instant; used as an "never" sentinel.
    pub const MAX: Nanos = Nanos(u64::MAX);

    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; convenient when computing elapsed times
    /// against timestamps that may lie in the future (e.g. pause deadlines).
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    pub fn min(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.min(rhs.0))
    }
    pub fn max(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.max(rhs.0))
    }

    /// The 48-bit switch timestamp for this instant (wraps like hardware).
    pub fn switch_timestamp(self) -> u64 {
        self.0 & ((1 << 48) - 1)
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.checked_add(rhs.0).expect("Nanos overflow"))
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        *self = *self + rhs;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.checked_sub(rhs.0).expect("Nanos underflow"))
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Nanos::from_micros(3).as_nanos(), 3_000);
        assert_eq!(Nanos::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(Nanos::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Nanos::from_millis(1).as_millis_f64(), 1.0);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos(100);
        let b = Nanos(40);
        assert_eq!(a + b, Nanos(140));
        assert_eq!(a - b, Nanos(60));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    #[should_panic(expected = "Nanos underflow")]
    fn checked_sub_panics() {
        let _ = Nanos(1) - Nanos(2);
    }

    #[test]
    fn switch_timestamp_wraps_at_48_bits() {
        let t = Nanos((1u64 << 48) + 5);
        assert_eq!(t.switch_timestamp(), 5);
        assert_eq!(Nanos(7).switch_timestamp(), 7);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Nanos(10)), "10ns");
        assert_eq!(format!("{}", Nanos::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", Nanos::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(4)), "4.000s");
    }
}
