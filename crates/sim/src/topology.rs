//! Network topologies: nodes, links, and routing.
//!
//! Builders are provided for the paper's evaluation topology (fat-tree K=4,
//! 20 switches, 100 Gbps links, 2 µs delay), plus the small chain and ring
//! topologies of Fig. 1 used for case studies, and a dumbbell for unit
//! tests. Routing is shortest-path with ECMP; scenarios may install
//! per-(switch, destination) route overrides to emulate the routing
//! misconfigurations that create cyclic buffer dependencies (§2.1).

use crate::ids::{FlowKey, NodeId, PortId};
use crate::time::Nanos;
use crate::units::Bandwidth;
use std::collections::{HashMap, VecDeque};

/// Role of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    Host,
    Switch,
}

/// One direction-independent attachment point: the peer it connects to and
/// the link's properties (identical in both directions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortInfo {
    pub peer: PortId,
    pub bandwidth: Bandwidth,
    pub delay: Nanos,
}

/// An immutable network graph plus routing state.
#[derive(Debug, Clone)]
pub struct Topology {
    kinds: Vec<NodeKind>,
    names: Vec<String>,
    ports: Vec<Vec<PortInfo>>,
    /// For each switch index: dst host -> sorted candidate egress ports.
    routes: HashMap<(NodeId, NodeId), Vec<u8>>,
    /// Scenario-installed forced next hops: (switch, dst host) -> port.
    overrides: HashMap<(NodeId, NodeId), u8>,
}

impl Topology {
    /// Create an empty topology; use `add_host`/`add_switch`/`connect`.
    pub fn new() -> Self {
        Topology {
            kinds: Vec::new(),
            names: Vec::new(),
            ports: Vec::new(),
            routes: HashMap::new(),
            overrides: HashMap::new(),
        }
    }

    pub fn add_host(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Host, name.into())
    }

    pub fn add_switch(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(NodeKind::Switch, name.into())
    }

    fn add_node(&mut self, kind: NodeKind, name: String) -> NodeId {
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(kind);
        self.names.push(name);
        self.ports.push(Vec::new());
        id
    }

    /// Connect two nodes with a full-duplex link; returns the (a-side,
    /// b-side) port numbers allocated.
    pub fn connect(&mut self, a: NodeId, b: NodeId, bw: Bandwidth, delay: Nanos) -> (u8, u8) {
        let pa = self.ports[a.index()].len() as u8;
        let pb = self.ports[b.index()].len() as u8;
        self.ports[a.index()].push(PortInfo {
            peer: PortId::new(b, pb),
            bandwidth: bw,
            delay,
        });
        self.ports[b.index()].push(PortInfo {
            peer: PortId::new(a, pa),
            bandwidth: bw,
            delay,
        });
        (pa, pb)
    }

    pub fn node_count(&self) -> usize {
        self.kinds.len()
    }

    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.kinds[n.index()]
    }

    pub fn is_host(&self, n: NodeId) -> bool {
        self.kind(n) == NodeKind::Host
    }

    pub fn name(&self, n: NodeId) -> &str {
        &self.names[n.index()]
    }

    pub fn hosts(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.kinds.len() as u32)
            .map(NodeId)
            .filter(|n| self.is_host(*n))
    }

    pub fn switches(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.kinds.len() as u32)
            .map(NodeId)
            .filter(|n| !self.is_host(*n))
    }

    pub fn ports(&self, n: NodeId) -> &[PortInfo] {
        &self.ports[n.index()]
    }

    pub fn port(&self, p: PortId) -> &PortInfo {
        &self.ports[p.node.index()][p.port as usize]
    }

    /// The port on the far end of `p`'s link.
    pub fn peer(&self, p: PortId) -> PortId {
        self.port(p).peer
    }

    /// Whether the given port attaches directly to a host.
    pub fn is_host_facing(&self, p: PortId) -> bool {
        self.is_host(self.peer(p).node)
    }

    /// Compute shortest-path ECMP routes from every switch to every host.
    /// Must be called after the graph is final and before `route_port`.
    pub fn compute_routes(&mut self) {
        self.routes.clear();
        // BFS from each host over the switch graph gives, per switch, the
        // distance to that host; candidate next hops are all neighbors one
        // step closer.
        for dst in self.hosts().collect::<Vec<_>>() {
            let dist = self.bfs_dist(dst);
            for sw in self.switches().collect::<Vec<_>>() {
                let d = dist[sw.index()];
                if d == u32::MAX {
                    continue;
                }
                let mut cands: Vec<u8> = Vec::new();
                for (pi, info) in self.ports[sw.index()].iter().enumerate() {
                    let peer = info.peer.node;
                    if dist[peer.index()] < d {
                        cands.push(pi as u8);
                    }
                }
                cands.sort_unstable();
                self.routes.insert((sw, dst), cands);
            }
        }
    }

    fn bfs_dist(&self, from: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.node_count()];
        dist[from.index()] = 0;
        let mut q = VecDeque::from([from]);
        while let Some(n) = q.pop_front() {
            // Hosts other than the origin do not forward traffic.
            if n != from && self.is_host(n) {
                continue;
            }
            for info in &self.ports[n.index()] {
                let m = info.peer.node;
                if dist[m.index()] == u32::MAX {
                    dist[m.index()] = dist[n.index()] + 1;
                    q.push_back(m);
                }
            }
        }
        dist
    }

    /// Force traffic for `dst` at `sw` out of `port`, regardless of the
    /// computed shortest path. Used by deadlock scenarios to emulate routing
    /// misconfiguration; intentionally allowed to create loops.
    pub fn add_route_override(&mut self, sw: NodeId, dst: NodeId, port: u8) {
        assert!(!self.is_host(sw), "overrides apply to switches");
        self.overrides.insert((sw, dst), port);
    }

    pub fn clear_route_overrides(&mut self) {
        self.overrides.clear();
    }

    /// The egress port switch `sw` uses for `flow` (ECMP-hashed among
    /// equal-cost candidates, unless overridden).
    pub fn route_port(&self, sw: NodeId, flow: &FlowKey) -> Option<u8> {
        if let Some(&p) = self.overrides.get(&(sw, flow.dst)) {
            return Some(p);
        }
        let cands = self.routes.get(&(sw, flow.dst))?;
        if cands.is_empty() {
            return None;
        }
        Some(cands[(flow.hash32() as usize) % cands.len()])
    }

    /// The full switch path a flow takes, as (switch, ingress port, egress
    /// port) triples from source ToR to destination ToR. Returns `None` if
    /// routing fails or loops beyond `max_hops`.
    pub fn flow_path(&self, flow: &FlowKey) -> Option<Vec<(NodeId, u8, u8)>> {
        let mut path = Vec::new();
        let src_port = PortId::new(flow.src, 0);
        let mut at = self.peer(src_port); // ingress port on the first switch
        let max_hops = 64;
        for _ in 0..max_hops {
            if self.is_host(at.node) {
                return Some(path);
            }
            let out = self.route_port(at.node, flow)?;
            path.push((at.node, at.port, out));
            at = self.peer(PortId::new(at.node, out));
        }
        None // routing loop
    }

    /// All (switch, egress port) pairs on the flow's path.
    pub fn flow_egress_ports(&self, flow: &FlowKey) -> Vec<PortId> {
        self.flow_path(flow)
            .map(|p| {
                p.into_iter()
                    .map(|(sw, _, out)| PortId::new(sw, out))
                    .collect()
            })
            .unwrap_or_default()
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::new()
    }
}

/// Default link parameters used across the evaluation (paper §4.1).
pub const EVAL_BANDWIDTH: Bandwidth = Bandwidth::from_gbps(100);
pub const EVAL_DELAY: Nanos = Nanos::from_micros(2);

/// Parameters for the generalized three-tier Clos family.
///
/// A classic fat-tree is the symmetric point of this family
/// (`ClosConfig::fat_tree(k)`); the extra knobs cover the corpus variants:
/// asymmetric capacity (slowed agg↔core uplinks on trailing pods) and
/// link-failure topologies (trailing agg↔core links never built). Node
/// naming follows the `fat_tree` scheme (`h{i}`, `edge{p}_{e}`,
/// `agg{p}_{a}`, `core{c}`) so navigation by name works across the family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosConfig {
    pub pods: usize,
    pub edges_per_pod: usize,
    pub aggs_per_pod: usize,
    pub hosts_per_edge: usize,
    /// Agg index `a` of every pod connects to cores
    /// `[a*cores_per_group, (a+1)*cores_per_group)`.
    pub cores_per_group: usize,
    pub bw: Bandwidth,
    pub delay: Nanos,
    /// Agg↔core uplinks of the last `slow_pods` pods run at
    /// `bw / slow_divisor` (asymmetric-capacity Clos). 0 = symmetric.
    pub slow_pods: usize,
    pub slow_divisor: u64,
    /// Skip this many agg↔core links, counted backward from the last one
    /// the symmetric build would create (link-failure variant).
    pub failed_core_links: usize,
}

impl ClosConfig {
    /// The symmetric fat-tree with parameter `k`.
    pub fn fat_tree(k: usize, bw: Bandwidth, delay: Nanos) -> Self {
        assert!(k >= 2 && k.is_multiple_of(2), "fat-tree k must be even");
        let half = k / 2;
        ClosConfig {
            pods: k,
            edges_per_pod: half,
            aggs_per_pod: half,
            hosts_per_edge: half,
            cores_per_group: half,
            bw,
            delay,
            slow_pods: 0,
            slow_divisor: 1,
            failed_core_links: 0,
        }
    }

    pub fn host_count(&self) -> usize {
        self.pods * self.edges_per_pod * self.hosts_per_edge
    }
}

/// Build a member of the generalized Clos family described by `cfg`.
///
/// Construction order (hosts, then per-pod edge+agg switches, then cores;
/// links host↔edge, edge↔agg, agg↔core) matches the historical `fat_tree`
/// builder exactly, so `clos(&ClosConfig::fat_tree(k, ..))` produces
/// byte-identical node ids, port numbers, and therefore ECMP hashes.
pub fn clos(cfg: &ClosConfig) -> Topology {
    assert!(cfg.pods >= 1 && cfg.edges_per_pod >= 1 && cfg.hosts_per_edge >= 1);
    assert!(cfg.aggs_per_pod >= 1 && cfg.cores_per_group >= 1);
    assert!(cfg.slow_divisor >= 1, "slow_divisor must be >= 1");
    assert!(cfg.slow_pods <= cfg.pods);
    let mut t = Topology::new();
    let (epp, app, hpe) = (cfg.edges_per_pod, cfg.aggs_per_pod, cfg.hosts_per_edge);

    let mut hosts = Vec::new();
    for pod in 0..cfg.pods {
        for e in 0..epp {
            for h in 0..hpe {
                hosts.push(t.add_host(format!("h{}", pod * epp * hpe + e * hpe + h)));
            }
        }
    }
    let mut edges = Vec::new();
    let mut aggs = Vec::new();
    for pod in 0..cfg.pods {
        for e in 0..epp {
            edges.push(t.add_switch(format!("edge{}_{}", pod, e)));
        }
        for a in 0..app {
            aggs.push(t.add_switch(format!("agg{}_{}", pod, a)));
        }
    }
    let mut cores = Vec::new();
    for c in 0..app * cfg.cores_per_group {
        cores.push(t.add_switch(format!("core{}", c)));
    }

    // Host <-> edge links.
    for pod in 0..cfg.pods {
        for e in 0..epp {
            let edge = edges[pod * epp + e];
            for h in 0..hpe {
                let host = hosts[pod * epp * hpe + e * hpe + h];
                t.connect(host, edge, cfg.bw, cfg.delay);
            }
        }
    }
    // Edge <-> agg links (full bipartite within a pod).
    for pod in 0..cfg.pods {
        for e in 0..epp {
            for a in 0..app {
                t.connect(edges[pod * epp + e], aggs[pod * app + a], cfg.bw, cfg.delay);
            }
        }
    }
    // Agg <-> core links: agg `a` of each pod connects to cores
    // [a*cores_per_group, (a+1)*cores_per_group). The last
    // `failed_core_links` links in enumeration order are not built; the
    // last `slow_pods` pods uplink at reduced bandwidth.
    let total_core_links = cfg.pods * app * cfg.cores_per_group;
    let first_failed = total_core_links.saturating_sub(cfg.failed_core_links);
    let slow_bw = Bandwidth::from_bps(cfg.bw.bits_per_sec() / cfg.slow_divisor);
    let mut link_idx = 0;
    for pod in 0..cfg.pods {
        let uplink_bw = if pod >= cfg.pods - cfg.slow_pods {
            slow_bw
        } else {
            cfg.bw
        };
        for a in 0..app {
            for c in 0..cfg.cores_per_group {
                if link_idx < first_failed {
                    t.connect(
                        aggs[pod * app + a],
                        cores[a * cfg.cores_per_group + c],
                        uplink_bw,
                        cfg.delay,
                    );
                }
                link_idx += 1;
            }
        }
    }

    t.compute_routes();
    t
}

/// Build the paper's evaluation topology: a fat-tree with parameter `k`
/// (k=4: 16 hosts, 20 switches — 8 edge, 8 aggregation, 4 core).
pub fn fat_tree(k: usize, bw: Bandwidth, delay: Nanos) -> Topology {
    clos(&ClosConfig::fat_tree(k, bw, delay))
}

/// A linear chain of `n` switches, each with `hosts_per_switch` hosts —
/// the Fig. 1(a)/1(b) style topology for case studies.
pub fn chain(n: usize, hosts_per_switch: usize, bw: Bandwidth, delay: Nanos) -> Topology {
    assert!(n >= 1);
    let mut t = Topology::new();
    let mut hosts = Vec::new();
    for s in 0..n {
        for h in 0..hosts_per_switch {
            hosts.push(t.add_host(format!("h{}_{}", s, h)));
        }
    }
    let mut sws = Vec::new();
    for s in 0..n {
        sws.push(t.add_switch(format!("sw{}", s)));
    }
    for s in 0..n {
        for h in 0..hosts_per_switch {
            t.connect(hosts[s * hosts_per_switch + h], sws[s], bw, delay);
        }
    }
    for s in 0..n - 1 {
        t.connect(sws[s], sws[s + 1], bw, delay);
    }
    t.compute_routes();
    t
}

/// A ring of `n` switches with hosts, for cyclic-buffer-dependency
/// (deadlock) case studies; shortest-path routing is still loop-free, so
/// scenarios install overrides to push flows around the cycle.
pub fn ring(n: usize, hosts_per_switch: usize, bw: Bandwidth, delay: Nanos) -> Topology {
    assert!(n >= 3);
    let mut t = Topology::new();
    let mut hosts = Vec::new();
    for s in 0..n {
        for h in 0..hosts_per_switch {
            hosts.push(t.add_host(format!("h{}_{}", s, h)));
        }
    }
    let mut sws = Vec::new();
    for s in 0..n {
        sws.push(t.add_switch(format!("sw{}", s)));
    }
    for s in 0..n {
        for h in 0..hosts_per_switch {
            t.connect(hosts[s * hosts_per_switch + h], sws[s], bw, delay);
        }
    }
    for s in 0..n {
        t.connect(sws[s], sws[(s + 1) % n], bw, delay);
    }
    t.compute_routes();
    t
}

/// A two-tier leaf-spine fabric: `leaves` ToR switches with
/// `hosts_per_leaf` hosts each, fully meshed to `spines` spine switches —
/// the other common data-center fabric besides the fat-tree.
pub fn leaf_spine(
    leaves: usize,
    spines: usize,
    hosts_per_leaf: usize,
    bw: Bandwidth,
    delay: Nanos,
) -> Topology {
    assert!(leaves >= 1 && spines >= 1);
    let mut t = Topology::new();
    let mut hosts = Vec::new();
    for l in 0..leaves {
        for h in 0..hosts_per_leaf {
            hosts.push(t.add_host(format!("h{}", l * hosts_per_leaf + h)));
        }
    }
    let leaf_ids: Vec<_> = (0..leaves)
        .map(|l| t.add_switch(format!("leaf{l}")))
        .collect();
    let spine_ids: Vec<_> = (0..spines)
        .map(|s| t.add_switch(format!("spine{s}")))
        .collect();
    for (l, &leaf) in leaf_ids.iter().enumerate() {
        for h in 0..hosts_per_leaf {
            t.connect(hosts[l * hosts_per_leaf + h], leaf, bw, delay);
        }
    }
    for &leaf in &leaf_ids {
        for &spine in &spine_ids {
            t.connect(leaf, spine, bw, delay);
        }
    }
    t.compute_routes();
    t
}

/// Two switches, `left`/`right` hosts on each side; the smallest topology
/// that exhibits cross-switch PFC backpressure. For unit tests.
pub fn dumbbell(left: usize, right: usize, bw: Bandwidth, delay: Nanos) -> Topology {
    let mut t = Topology::new();
    let lhosts: Vec<_> = (0..left).map(|i| t.add_host(format!("l{i}"))).collect();
    let rhosts: Vec<_> = (0..right).map(|i| t.add_host(format!("r{i}"))).collect();
    let sl = t.add_switch("swL");
    let sr = t.add_switch("swR");
    for h in lhosts {
        t.connect(h, sl, bw, delay);
    }
    for h in rhosts {
        t.connect(h, sr, bw, delay);
    }
    t.connect(sl, sr, bw, delay);
    t.compute_routes();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_k4_matches_paper_scale() {
        let t = fat_tree(4, EVAL_BANDWIDTH, EVAL_DELAY);
        assert_eq!(t.hosts().count(), 16);
        assert_eq!(t.switches().count(), 20);
        // Every edge switch has 2 hosts + 2 aggs = 4 ports; aggs 2+2; cores 4.
        for sw in t.switches() {
            assert_eq!(t.ports(sw).len(), 4, "switch {} radix", t.name(sw));
        }
    }

    #[test]
    fn clos_fat_tree_identical_to_legacy_shape() {
        // The k=8 fat-tree through the generalized builder keeps the
        // expected scale and uniform radix.
        let t = fat_tree(8, EVAL_BANDWIDTH, EVAL_DELAY);
        assert_eq!(t.hosts().count(), 128);
        assert_eq!(t.switches().count(), 80);
        for sw in t.switches() {
            assert_eq!(t.ports(sw).len(), 8, "switch {} radix", t.name(sw));
        }
    }

    #[test]
    fn clos_failed_core_links_drop_trailing_uplinks() {
        let mut cfg = ClosConfig::fat_tree(4, EVAL_BANDWIDTH, EVAL_DELAY);
        cfg.failed_core_links = 2;
        let t = clos(&cfg);
        // The last pod's last agg lost both its core uplinks: 2 ports left.
        let agg_last = t
            .switches()
            .find(|&s| t.name(s) == "agg3_1")
            .expect("agg3_1 exists");
        assert_eq!(t.ports(agg_last).len(), 2);
        // All host pairs still route (BFS recomputed on the real graph).
        let hosts: Vec<_> = t.hosts().collect();
        let f = FlowKey::roce(hosts[0], hosts[15], 7);
        assert!(t.flow_path(&f).is_some());
    }

    #[test]
    fn clos_slow_pods_reduce_uplink_bandwidth() {
        let mut cfg = ClosConfig::fat_tree(4, EVAL_BANDWIDTH, EVAL_DELAY);
        cfg.slow_pods = 2;
        cfg.slow_divisor = 4;
        let t = clos(&cfg);
        let agg0 = t.switches().find(|&s| t.name(s) == "agg0_0").unwrap();
        let agg3 = t.switches().find(|&s| t.name(s) == "agg3_0").unwrap();
        // Ports 0..2 on an agg face edges; 2..4 face cores.
        assert_eq!(t.ports(agg0)[2].bandwidth, EVAL_BANDWIDTH);
        assert_eq!(
            t.ports(agg3)[2].bandwidth,
            Bandwidth::from_bps(EVAL_BANDWIDTH.bits_per_sec() / 4)
        );
        // Fast pods keep full-rate uplinks.
        assert_eq!(t.ports(agg0)[3].bandwidth, EVAL_BANDWIDTH);
    }

    #[test]
    fn fat_tree_routes_all_pairs() {
        let t = fat_tree(4, EVAL_BANDWIDTH, EVAL_DELAY);
        let hosts: Vec<_> = t.hosts().collect();
        for &a in &hosts {
            for &b in &hosts {
                if a == b {
                    continue;
                }
                let f = FlowKey::roce(a, b, 99);
                let path = t.flow_path(&f).expect("path exists");
                assert!(!path.is_empty());
                // Intra-rack: 1 switch; intra-pod: 3; inter-pod: 5.
                assert!(
                    matches!(path.len(), 1 | 3 | 5),
                    "unexpected path length {} for {}->{}",
                    path.len(),
                    a.0,
                    b.0
                );
                // Path ends adjacent to the destination.
                let (last_sw, _, out) = *path.last().unwrap();
                assert_eq!(t.peer(PortId::new(last_sw, out)).node, b);
            }
        }
    }

    #[test]
    fn ecmp_spreads_flows_across_candidates() {
        let t = fat_tree(4, EVAL_BANDWIDTH, EVAL_DELAY);
        let hosts: Vec<_> = t.hosts().collect();
        // Inter-pod pair: first and last host.
        let (a, b) = (hosts[0], hosts[15]);
        let mut seen = std::collections::HashSet::new();
        for sp in 0..64 {
            let f = FlowKey::roce(a, b, sp);
            seen.insert(t.flow_path(&f).unwrap());
        }
        assert!(seen.len() >= 2, "ECMP should yield multiple paths");
    }

    #[test]
    fn chain_routes_along_the_line() {
        let t = chain(4, 2, EVAL_BANDWIDTH, EVAL_DELAY);
        let hosts: Vec<_> = t.hosts().collect();
        let f = FlowKey::roce(hosts[0], hosts[7], 5);
        let path = t.flow_path(&f).unwrap();
        assert_eq!(path.len(), 4);
    }

    #[test]
    fn dumbbell_crosses_the_middle_link() {
        let t = dumbbell(2, 2, EVAL_BANDWIDTH, EVAL_DELAY);
        let hosts: Vec<_> = t.hosts().collect();
        let f = FlowKey::roce(hosts[0], hosts[2], 5);
        let path = t.flow_path(&f).unwrap();
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn route_override_changes_path_and_can_loop() {
        let mut t = ring(4, 1, EVAL_BANDWIDTH, EVAL_DELAY);
        let hosts: Vec<_> = t.hosts().collect();
        let sws: Vec<_> = t.switches().collect();
        let f = FlowKey::roce(hosts[0], hosts[1], 5);
        let normal = t.flow_path(&f).unwrap();
        assert_eq!(normal.len(), 2);
        // Force sw0 to route the "long way" for dst host1.
        // sw0 ports: 0 = host, 1 = to sw1, 2 = to sw3 (ring closure gives
        // the last switch the back-link).
        let back_port = (t.ports(sws[0]).len() - 1) as u8;
        t.add_route_override(sws[0], hosts[1], back_port);
        // Pin the rest of the long way round so ECMP cannot bounce back.
        for i in [3usize, 2] {
            let next = sws[(i + 3) % 4]; // 3 -> 2, 2 -> 1
            let port = (0..t.ports(sws[i]).len() as u8)
                .find(|&p| t.peer(PortId::new(sws[i], p)).node == next)
                .unwrap();
            t.add_route_override(sws[i], hosts[1], port);
        }
        let long = t.flow_path(&f).unwrap();
        assert!(long.len() > normal.len());
        t.clear_route_overrides();
        assert_eq!(t.flow_path(&f).unwrap(), normal);
    }

    #[test]
    fn full_loop_override_detected() {
        let mut t = ring(4, 1, EVAL_BANDWIDTH, EVAL_DELAY);
        let hosts: Vec<_> = t.hosts().collect();
        let sws: Vec<_> = t.switches().collect();
        // Route dst=host0 clockwise forever.
        for i in 0..4 {
            // Each switch's port to the next switch: ports are [host,
            // prev?, next?] — find the port whose peer is sws[(i+1)%4].
            let next = sws[(i + 1) % 4];
            let port = (0..t.ports(sws[i]).len() as u8)
                .find(|&p| t.peer(PortId::new(sws[i], p)).node == next)
                .unwrap();
            t.add_route_override(sws[i], hosts[0], port);
        }
        let f = FlowKey::roce(hosts[2], hosts[0], 5);
        assert!(t.flow_path(&f).is_none(), "loop must be detected");
    }

    #[test]
    fn leaf_spine_routes_and_ecmp() {
        let t = leaf_spine(4, 2, 4, EVAL_BANDWIDTH, EVAL_DELAY);
        assert_eq!(t.hosts().count(), 16);
        assert_eq!(t.switches().count(), 6);
        let hosts: Vec<_> = t.hosts().collect();
        // Intra-leaf: 1 switch; inter-leaf: leaf-spine-leaf.
        let intra = t.flow_path(&FlowKey::roce(hosts[0], hosts[1], 5)).unwrap();
        assert_eq!(intra.len(), 1);
        let inter = t.flow_path(&FlowKey::roce(hosts[0], hosts[5], 5)).unwrap();
        assert_eq!(inter.len(), 3);
        // ECMP spreads inter-leaf flows over both spines.
        let mut spines = std::collections::HashSet::new();
        for sp in 0..32 {
            let p = t.flow_path(&FlowKey::roce(hosts[0], hosts[5], sp)).unwrap();
            spines.insert(p[1].0);
        }
        assert_eq!(spines.len(), 2);
    }

    #[test]
    fn host_facing_detection() {
        let t = dumbbell(1, 1, EVAL_BANDWIDTH, EVAL_DELAY);
        let sws: Vec<_> = t.switches().collect();
        assert!(t.is_host_facing(PortId::new(sws[0], 0)));
        // Port 1 of swL is the inter-switch link.
        assert!(!t.is_host_facing(PortId::new(sws[0], 1)));
    }
}
