//! Bandwidth and PFC quanta arithmetic.

use crate::time::Nanos;

/// Link bandwidth.
///
/// Stored in bits per second; helper constructors cover the usual data-center
/// speeds. Conversion to serialization time is exact in integer nanoseconds
/// (rounded up so a transmitting port is never released early).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Bandwidth {
    bits_per_sec: u64,
}

impl Bandwidth {
    pub const fn from_gbps(gbps: u64) -> Self {
        Bandwidth {
            bits_per_sec: gbps * 1_000_000_000,
        }
    }

    pub const fn from_bps(bits_per_sec: u64) -> Self {
        Bandwidth { bits_per_sec }
    }

    pub const fn bits_per_sec(self) -> u64 {
        self.bits_per_sec
    }

    pub fn gbps_f64(self) -> f64 {
        self.bits_per_sec as f64 / 1e9
    }

    /// Time to serialize `bytes` onto the wire at this bandwidth.
    ///
    /// Rounds up to the next nanosecond: a port stays busy for at least the
    /// true serialization time, which keeps link utilization <= 100%.
    pub fn tx_time(self, bytes: u32) -> Nanos {
        debug_assert!(self.bits_per_sec > 0, "zero bandwidth");
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(self.bits_per_sec as u128);
        Nanos(ns as u64)
    }

    /// Bytes transferable in `dur` at this bandwidth (rounded down).
    pub fn bytes_in(self, dur: Nanos) -> u64 {
        (self.bits_per_sec as u128 * dur.as_nanos() as u128 / 8 / 1_000_000_000) as u64
    }
}

/// One IEEE 802.1Qbb pause quantum is the time to transmit 512 bits at the
/// port's line rate. A PFC PAUSE frame carries a 16-bit quanta count per
/// priority class.
pub fn quanta_to_pause_time(quanta: u16, speed: Bandwidth) -> Nanos {
    let bits = quanta as u128 * 512;
    let ns = (bits * 1_000_000_000).div_ceil(speed.bits_per_sec as u128);
    Nanos(ns as u64)
}

/// Inverse of [`quanta_to_pause_time`], saturating at the 16-bit maximum.
pub fn pause_time_to_quanta(dur: Nanos, speed: Bandwidth) -> u16 {
    let bits = dur.as_nanos() as u128 * speed.bits_per_sec as u128 / 1_000_000_000;
    (bits / 512).min(u16::MAX as u128) as u16
}

/// A sending rate used by host congestion control, in bits per second.
///
/// Kept separate from [`Bandwidth`] because rates are adjusted in floating
/// point by DCQCN, while link bandwidths are exact configuration.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Rate(pub f64);

impl Rate {
    pub fn from_bandwidth(bw: Bandwidth) -> Self {
        Rate(bw.bits_per_sec() as f64)
    }

    pub fn gbps(self) -> f64 {
        self.0 / 1e9
    }

    /// Inter-packet gap when pacing `bytes`-sized packets at this rate.
    pub fn pacing_delay(self, bytes: u32) -> Nanos {
        if self.0 <= 0.0 {
            return Nanos::MAX;
        }
        let ns = (bytes as f64 * 8.0 * 1e9 / self.0).ceil();
        if ns >= u64::MAX as f64 {
            Nanos::MAX
        } else {
            Nanos(ns as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_100g() {
        // 1000 bytes at 100 Gbps = 8000 bits / 100 bits-per-ns = 80 ns.
        let bw = Bandwidth::from_gbps(100);
        assert_eq!(bw.tx_time(1000), Nanos(80));
        // Rounds up.
        assert_eq!(bw.tx_time(1), Nanos(1));
    }

    #[test]
    fn tx_time_25g() {
        let bw = Bandwidth::from_gbps(25);
        assert_eq!(bw.tx_time(1000), Nanos(320));
    }

    #[test]
    fn bytes_in_inverts_tx_time() {
        let bw = Bandwidth::from_gbps(100);
        let t = bw.tx_time(1500);
        assert_eq!(bw.bytes_in(t), 1500);
    }

    #[test]
    fn quanta_round_trip() {
        let bw = Bandwidth::from_gbps(100);
        // 65535 quanta at 100 Gbps: 65535*512 bits / 100 bits-per-ns.
        let t = quanta_to_pause_time(u16::MAX, bw);
        assert_eq!(t, Nanos(335_540));
        let q = pause_time_to_quanta(t, bw);
        assert!(q >= u16::MAX - 1);
    }

    #[test]
    fn zero_quanta_is_resume() {
        let bw = Bandwidth::from_gbps(100);
        assert_eq!(quanta_to_pause_time(0, bw), Nanos::ZERO);
    }

    #[test]
    fn rate_pacing() {
        let r = Rate::from_bandwidth(Bandwidth::from_gbps(100));
        assert_eq!(r.pacing_delay(1000), Nanos(80));
        let half = Rate(50e9);
        assert_eq!(half.pacing_delay(1000), Nanos(160));
        assert_eq!(Rate(0.0).pacing_delay(1000), Nanos::MAX);
    }
}
