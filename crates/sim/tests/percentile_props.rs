//! Property tests for the exact nearest-rank percentile the run summary
//! reports (`fct_p50/p90/p99`). The serve plane's bucketed histogram
//! percentiles (hawkeye-obs) are property-tested against the same
//! invariants on their side; together they pin both percentile surfaces
//! to the same definition.

use hawkeye_sim::percentile_nearest_rank;
use proptest::prelude::*;

fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..1_000_000, 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// p is monotone in q and always an element of the sample set,
    /// bounded by min and max.
    #[test]
    fn nearest_rank_is_monotone_and_bounded(vals in samples(), qa in 0.0f64..1.01, qb in 0.0f64..1.01) {
        let mut vals = vals;
        vals.sort_unstable();
        if vals.is_empty() {
            prop_assert_eq!(percentile_nearest_rank(&vals, 0.5), None);
            return Ok(());
        }
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let plo = percentile_nearest_rank(&vals, lo).unwrap();
        let phi = percentile_nearest_rank(&vals, hi).unwrap();
        prop_assert!(plo <= phi);
        prop_assert!(vals.binary_search(&plo).is_ok());
        prop_assert!(*vals.first().unwrap() <= plo);
        prop_assert!(phi <= *vals.last().unwrap());
    }

    /// The canonical trio the summary publishes is ordered.
    #[test]
    fn p50_p90_p99_ordered(vals in samples()) {
        let mut vals = vals;
        vals.sort_unstable();
        if vals.is_empty() {
            return Ok(());
        }
        let p50 = percentile_nearest_rank(&vals, 0.50).unwrap();
        let p90 = percentile_nearest_rank(&vals, 0.90).unwrap();
        let p99 = percentile_nearest_rank(&vals, 0.99).unwrap();
        prop_assert!(p50 <= p90);
        prop_assert!(p90 <= p99);
    }
}
