//! Property-based tests of simulator invariants: losslessness,
//! conservation, completion, and determinism under randomized workloads.

use hawkeye_sim::{
    dumbbell, fat_tree, FlowKey, Nanos, NullHook, SimConfig, Simulator, EVAL_BANDWIDTH, EVAL_DELAY,
};
use proptest::prelude::*;

/// A randomized small workload.
#[derive(Debug, Clone)]
struct Workload {
    flows: Vec<(usize, usize, u16, u64, u64)>, // (src idx, dst idx, sport, bytes, start_us)
}

fn workload(max_hosts: usize) -> impl Strategy<Value = Workload> {
    proptest::collection::vec(
        (
            0..max_hosts,
            0..max_hosts,
            0u16..1000,
            1_000u64..2_000_000,
            0u64..500,
        ),
        1..12,
    )
    .prop_map(|flows| Workload { flows })
}

fn run_workload(w: &Workload, seed: u64) -> (Simulator<NullHook>, Vec<hawkeye_sim::FlowId>) {
    let topo = dumbbell(3, 3, EVAL_BANDWIDTH, EVAL_DELAY);
    let hosts: Vec<_> = topo.hosts().collect();
    let mut sim = Simulator::new(
        topo,
        SimConfig {
            seed,
            ..Default::default()
        },
        NullHook,
    );
    let mut ids = Vec::new();
    for (i, &(s, d, sp, bytes, start)) in w.flows.iter().enumerate() {
        let src = hosts[s % hosts.len()];
        let mut dst = hosts[d % hosts.len()];
        if dst == src {
            dst = hosts[(d + 1) % hosts.len()];
        }
        ids.push(sim.add_flow(
            FlowKey::roce(src, dst, sp.wrapping_add(i as u16)),
            bytes,
            Nanos::from_micros(start),
        ));
    }
    sim.run_until(Nanos::from_millis(40));
    (sim, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// PFC keeps the fabric lossless: no buffer drops, ever.
    #[test]
    fn lossless_under_random_incast(w in workload(6), seed in 1u64..100) {
        let (sim, _) = run_workload(&w, seed);
        prop_assert_eq!(sim.sum_switch_stats(|s| s.drops_buffer), 0);
        prop_assert_eq!(sim.sum_switch_stats(|s| s.drops_no_route), 0);
    }

    /// Every flow completes on a loop-free topology given enough time.
    #[test]
    fn all_flows_complete(w in workload(6), seed in 1u64..100) {
        let (sim, _) = run_workload(&w, seed);
        prop_assert!(
            (sim.completion_ratio() - 1.0).abs() < f64::EPSILON,
            "completion {}", sim.completion_ratio()
        );
    }

    /// Conservation: every data packet sent by hosts is received by hosts
    /// (once flows complete and queues drain).
    #[test]
    fn packets_conserved(w in workload(6), seed in 1u64..100) {
        let (sim, _) = run_workload(&w, seed);
        let sent: u64 = sim.topo().hosts().map(|h| sim.host(h).stats.data_sent).sum();
        let rcvd: u64 = sim.topo().hosts().map(|h| sim.host(h).stats.data_rcvd).sum();
        prop_assert_eq!(sent, rcvd);
        prop_assert!(sent > 0);
    }

    /// Bit-for-bit determinism: identical seeds give identical statistics.
    #[test]
    fn deterministic_across_runs(w in workload(6), seed in 1u64..50) {
        let (a, _) = run_workload(&w, seed);
        let (b, _) = run_workload(&w, seed);
        prop_assert_eq!(a.events_processed(), b.events_processed());
        prop_assert_eq!(
            a.sum_switch_stats(|s| s.data_bytes),
            b.sum_switch_stats(|s| s.data_bytes)
        );
        prop_assert_eq!(
            a.sum_switch_stats(|s| s.pfc_pause_sent),
            b.sum_switch_stats(|s| s.pfc_pause_sent)
        );
    }

    /// ECMP routing never sends a flow off a valid path on the fat-tree.
    #[test]
    fn fat_tree_paths_always_terminate(sp in 0u16..512, a in 0usize..16, b in 0usize..16) {
        let topo = fat_tree(4, EVAL_BANDWIDTH, EVAL_DELAY);
        let hosts: Vec<_> = topo.hosts().collect();
        let (src, dst) = (hosts[a], hosts[(b + 1 + a) % 16]);
        if src == dst { return Ok(()); }
        let key = FlowKey::roce(src, dst, sp);
        let path = topo.flow_path(&key).expect("route exists");
        prop_assert!(matches!(path.len(), 1 | 3 | 5));
        // Path is simple (no repeated switch).
        let mut sws: Vec<_> = path.iter().map(|(s, _, _)| *s).collect();
        sws.dedup();
        prop_assert_eq!(sws.len(), path.len());
    }
}
