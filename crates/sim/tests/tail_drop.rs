//! Regression: tail drops must surface — in [`RunSummary`], in the metrics
//! registry, and as `DropWarning` trace events — instead of vanishing into
//! a silent counter. A lossless (PFC) fabric that tail-drops has violated
//! its core invariant; a lossy ablation that drops must still report it so
//! degraded diagnosis quality is attributable.

use hawkeye_obs::{kind, MetricsRegistry, ObsConfig, Recorder, TraceEvent};
use hawkeye_sim::{
    dumbbell, trace_drop_warnings, FlowKey, Nanos, NullHook, RunSummary, SimConfig, Simulator,
    SwitchConfig, DATA_PKT_SIZE, EVAL_BANDWIDTH, EVAL_DELAY,
};

/// A lossy (PFC-off) dumbbell with a buffer a few packets deep and a 2:1
/// incast: guaranteed tail drops at the bottleneck switch.
fn lossy_incast() -> Simulator<NullHook> {
    let topo = dumbbell(2, 1, EVAL_BANDWIDTH, EVAL_DELAY);
    let hosts: Vec<_> = topo.hosts().collect();
    let cfg = SimConfig {
        switch: SwitchConfig {
            buffer_bytes: 8 * DATA_PKT_SIZE as u64,
            pfc_enabled: false,
            ..SwitchConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(topo, cfg, NullHook);
    sim.add_flow(FlowKey::roce(hosts[0], hosts[2], 1), 400_000, Nanos::ZERO);
    sim.add_flow(FlowKey::roce(hosts[1], hosts[2], 2), 400_000, Nanos::ZERO);
    sim.run_until(Nanos::from_millis(2));
    sim
}

#[test]
fn buffer_drops_reach_summary_registry_and_trace() {
    let sim = lossy_incast();

    let mut reg = MetricsRegistry::new();
    let summary = RunSummary::of_with(&sim, &mut reg);
    assert!(
        summary.buffer_drops > 0,
        "lossy incast with a tiny buffer must tail-drop"
    );
    assert_eq!(
        summary.buffer_drops,
        reg.counter_total("drops_buffer"),
        "summary and registry must agree"
    );
    assert_eq!(summary.route_drops, 0, "routing is intact in this topology");

    let mut obs = Recorder::new(ObsConfig::default());
    trace_drop_warnings(&sim, &mut obs);
    let warnings: Vec<_> = obs
        .tracer
        .records()
        .filter(|r| matches!(&r.event, TraceEvent::DropWarning { .. }))
        .collect();
    assert!(!warnings.is_empty(), "drops must emit a DropWarning event");
    assert!(warnings.iter().all(|r| {
        matches!(&r.event, TraceEvent::DropWarning { what, count, .. }
            if what == "buffer" && *count > 0)
    }));
    assert!(warnings.iter().all(|r| r.event.kind() == kind::WARNING));
}

#[test]
fn clean_run_emits_no_drop_warnings() {
    let topo = dumbbell(2, 2, EVAL_BANDWIDTH, EVAL_DELAY);
    let hosts: Vec<_> = topo.hosts().collect();
    let mut sim = Simulator::new(topo, SimConfig::default(), NullHook);
    sim.add_flow(FlowKey::roce(hosts[0], hosts[2], 1), 200_000, Nanos::ZERO);
    sim.run_until(Nanos::from_millis(3));

    let summary = RunSummary::of(&sim);
    assert_eq!(summary.buffer_drops, 0);
    assert_eq!(summary.route_drops, 0);

    let mut obs = Recorder::new(ObsConfig::default());
    trace_drop_warnings(&sim, &mut obs);
    assert_eq!(obs.tracer.recorded(), 0, "no drops, no warnings");
}
