//! Compacted telemetry aggregates: the lossy tier behind the raw epoch
//! ring.
//!
//! A long-running controller cannot keep raw [`EpochSnapshot`]s forever —
//! the paper's ring holds ~25 ms — but aged epochs still answer coarse
//! questions ("how much did this flow move through switch 7 last second?")
//! if they are folded into per-flow/per-port *sums* instead of dropped:
//! the same memory-vs-fidelity trade switch-side sketching systems make,
//! applied controller-side. A [`CompactedEpoch`] is one such bucket: the
//! additive counters of every raw epoch folded into it, over the time
//! range those epochs covered. Folding is commutative and associative, so
//! bucket *totals* are independent of fold order even though bucket
//! boundaries are not.
//!
//! What survives compaction: per-flow packet/pause/queue-depth sums and
//! active-epoch counts, per-port sums, causality-meter byte totals, and
//! the covered `[from, to)` range. What is lost: per-epoch alignment —
//! a bucket cannot answer `epoch_detail_at` or participate in a diagnosis
//! window, which is why the store serves those queries from the raw ring
//! only.

use crate::snapshot::EpochSnapshot;
use hawkeye_sim::{FlowKey, Nanos};
use serde::{Deserialize, Serialize};

/// Additive per-flow counters summed over every folded epoch the flow was
/// active in. Widened to `u64` — a compacted bucket may cover hours.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowTotals {
    pub pkt_count: u64,
    pub paused_count: u64,
    pub qdepth_sum: u64,
    /// Folded epochs in which the flow had a record.
    pub epochs_active: u32,
}

/// Additive per-port counters summed over every folded epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortTotals {
    pub pkt_count: u64,
    pub paused_count: u64,
    pub qdepth_sum: u64,
}

/// One compacted bucket: the additive aggregate of a set of raw epochs
/// from a single switch. All three tables are kept sorted by key, so a
/// bucket has exactly one representation per value — the property the
/// wire codec's canonical-encoding guarantee rests on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompactedEpoch {
    /// Earliest start among folded epochs.
    pub from: Nanos,
    /// Latest end among folded epochs.
    pub to: Nanos,
    /// Raw epochs folded in.
    pub epochs: u32,
    /// Per-(flow, out port) sums, sorted by (key, out_port).
    pub flows: Vec<(FlowKey, u8, FlowTotals)>,
    /// Per-port sums, sorted by port.
    pub ports: Vec<(u8, PortTotals)>,
    /// Causality-meter byte totals, sorted by (in_port, out_port).
    pub meter: Vec<(u8, u8, u64)>,
}

impl Default for CompactedEpoch {
    fn default() -> Self {
        CompactedEpoch {
            from: Nanos::MAX,
            to: Nanos::ZERO,
            epochs: 0,
            flows: Vec::new(),
            ports: Vec::new(),
            meter: Vec::new(),
        }
    }
}

impl CompactedEpoch {
    /// Whether anything has been folded in yet.
    pub fn is_empty(&self) -> bool {
        self.epochs == 0
    }

    /// Fold one raw epoch's counters into this bucket.
    ///
    /// Existing keys are accumulated in place; keys new to the bucket are
    /// gathered, appended in one reserved extend and re-sorted once —
    /// never a per-entry `Vec::insert` shifting the tail. In steady state
    /// (the same flow set epoch after epoch) a fold is pure accumulation
    /// with zero allocation, which is what `stage_fold_ns` measures on the
    /// compactor thread.
    pub fn fold(&mut self, ep: &EpochSnapshot) {
        self.epochs += 1;
        self.from = self.from.min(ep.start);
        self.to = self.to.max(ep.end());

        let mut new_flows: Vec<(FlowKey, u8, FlowTotals)> = Vec::new();
        for (key, rec) in &ep.flows {
            let k = (*key, rec.out_port);
            let t = match self
                .flows
                .binary_search_by_key(&k, |(fk, op, _)| (*fk, *op))
            {
                Ok(i) => &mut self.flows[i].2,
                Err(_) => match new_flows.iter_mut().find(|(fk, op, _)| (*fk, *op) == k) {
                    Some(row) => &mut row.2,
                    None => {
                        new_flows.push((k.0, k.1, FlowTotals::default()));
                        &mut new_flows.last_mut().expect("just pushed").2
                    }
                },
            };
            t.pkt_count += u64::from(rec.pkt_count);
            t.paused_count += u64::from(rec.paused_count);
            t.qdepth_sum += rec.qdepth_sum;
            t.epochs_active += 1;
        }
        if !new_flows.is_empty() {
            self.flows.reserve(new_flows.len());
            self.flows.append(&mut new_flows);
            self.flows.sort_unstable_by_key(|(fk, op, _)| (*fk, *op));
        }

        let mut new_ports: Vec<(u8, PortTotals)> = Vec::new();
        for (port, rec) in &ep.ports {
            let t = match self.ports.binary_search_by_key(port, |(p, _)| *p) {
                Ok(i) => &mut self.ports[i].1,
                Err(_) => match new_ports.iter_mut().find(|(p, _)| p == port) {
                    Some(row) => &mut row.1,
                    None => {
                        new_ports.push((*port, PortTotals::default()));
                        &mut new_ports.last_mut().expect("just pushed").1
                    }
                },
            };
            t.pkt_count += u64::from(rec.pkt_count);
            t.paused_count += u64::from(rec.paused_count);
            t.qdepth_sum += rec.qdepth_sum;
        }
        if !new_ports.is_empty() {
            self.ports.reserve(new_ports.len());
            self.ports.append(&mut new_ports);
            self.ports.sort_unstable_by_key(|(p, _)| *p);
        }

        let mut new_meter: Vec<(u8, u8, u64)> = Vec::new();
        for (ip, op, bytes) in &ep.meter {
            let k = (*ip, *op);
            match self.meter.binary_search_by_key(&k, |(i, o, _)| (*i, *o)) {
                Ok(i) => self.meter[i].2 += bytes,
                Err(_) => match new_meter.iter_mut().find(|(i, o, _)| (*i, *o) == k) {
                    Some(row) => row.2 += bytes,
                    None => new_meter.push((*ip, *op, *bytes)),
                },
            }
        }
        if !new_meter.is_empty() {
            self.meter.reserve(new_meter.len());
            self.meter.append(&mut new_meter);
            self.meter.sort_unstable_by_key(|(i, o, _)| (*i, *o));
        }
    }

    /// Totals for one flow key summed across out-ports, if the flow was
    /// seen in this bucket.
    pub fn flow_total(&self, key: &FlowKey) -> Option<FlowTotals> {
        let mut acc: Option<FlowTotals> = None;
        for (fk, _, t) in &self.flows {
            if fk == key {
                let a = acc.get_or_insert_with(FlowTotals::default);
                a.pkt_count += t.pkt_count;
                a.paused_count += t.paused_count;
                a.qdepth_sum += t.qdepth_sum;
                a.epochs_active += t.epochs_active;
            }
        }
        acc
    }

    /// Approximate resident bytes of this bucket (entry-count arithmetic,
    /// the same style as [`EpochSnapshot::wire_size`]) — the memory
    /// accounting the retention bench reports.
    pub fn approx_bytes(&self) -> usize {
        // from + to + epochs header.
        8 + 8
            + 4
            + self.flows.len() * (FlowKey::WIRE_SIZE + 1 + 8 + 8 + 8 + 4)
            + self.ports.len() * (1 + 8 + 8 + 8)
            + self.meter.len() * (1 + 1 + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{FlowRecord, PortRecord};
    use hawkeye_sim::NodeId;

    fn key(i: u16) -> FlowKey {
        FlowKey::roce(NodeId(1), NodeId(2), i)
    }

    fn epoch(start: u64, flows: &[(u16, u32, u8)]) -> EpochSnapshot {
        EpochSnapshot {
            slot: 0,
            id: (start >> 20) as u8,
            start: Nanos(start),
            len: Nanos(1 << 20),
            flows: flows
                .iter()
                .map(|&(i, pkt, port)| {
                    (
                        key(i),
                        FlowRecord {
                            pkt_count: pkt,
                            paused_count: pkt / 4,
                            qdepth_sum: u64::from(pkt) * 3,
                            out_port: port,
                        },
                    )
                })
                .collect(),
            ports: vec![(
                1,
                PortRecord {
                    pkt_count: 9,
                    paused_count: 2,
                    qdepth_sum: 77,
                },
            )],
            meter: vec![(0, 1, 1024)],
        }
    }

    #[test]
    fn fold_sums_counters_and_extends_range() {
        let mut c = CompactedEpoch::default();
        assert!(c.is_empty());
        c.fold(&epoch(0, &[(1, 10, 0)]));
        c.fold(&epoch(1 << 20, &[(1, 30, 0), (2, 5, 1)]));
        assert_eq!(c.epochs, 2);
        assert_eq!(c.from, Nanos(0));
        assert_eq!(c.to, Nanos(2 << 20));
        let t = c.flow_total(&key(1)).expect("flow 1 folded");
        assert_eq!(t.pkt_count, 40);
        assert_eq!(t.epochs_active, 2);
        assert_eq!(c.flow_total(&key(2)).unwrap().pkt_count, 5);
        assert!(c.flow_total(&key(9)).is_none());
        assert_eq!(c.ports[0].1.pkt_count, 18);
        assert_eq!(c.meter, vec![(0, 1, 2048)]);
    }

    #[test]
    fn fold_order_does_not_change_totals() {
        let eps = [
            epoch(0, &[(1, 10, 0)]),
            epoch(1 << 20, &[(2, 7, 1)]),
            epoch(2 << 20, &[(1, 3, 0), (2, 2, 1)]),
        ];
        let mut a = CompactedEpoch::default();
        let mut b = CompactedEpoch::default();
        for e in &eps {
            a.fold(e);
        }
        for e in eps.iter().rev() {
            b.fold(e);
        }
        assert_eq!(a, b, "folding is commutative over sorted tables");
    }

    #[test]
    fn same_flow_on_two_ports_keeps_separate_rows() {
        let mut c = CompactedEpoch::default();
        c.fold(&epoch(0, &[(1, 10, 0)]));
        c.fold(&epoch(1 << 20, &[(1, 20, 3)]));
        assert_eq!(c.flows.len(), 2, "keyed by (flow, out_port)");
        assert_eq!(c.flow_total(&key(1)).unwrap().pkt_count, 30);
    }

    #[test]
    fn approx_bytes_scales_with_entries() {
        let mut small = CompactedEpoch::default();
        small.fold(&epoch(0, &[(1, 10, 0)]));
        let mut large = small.clone();
        large.fold(&epoch(1 << 20, &[(2, 1, 0), (3, 1, 0), (4, 1, 0)]));
        assert!(large.approx_bytes() > small.approx_bytes());
    }
}
