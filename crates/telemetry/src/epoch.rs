//! Epoch demarcation by timestamp bit-slicing (§3.3, Fig. 4).
//!
//! Programmable switches stamp each enqueued packet with a 48-bit nanosecond
//! timestamp. Hawkeye derives the telemetry epoch directly from it: with an
//! epoch size of `2^shift` ns and `2^index_bits` epochs in the ring,
//! `timestamp[shift + index_bits - 1 : shift]` selects the ring slot and the
//! 8 bits above that are the *epoch ID* used to detect wrap-around — when a
//! packet's epoch ID differs from the one stored in the slot, the slot is
//! stale and must be reset before counting.

use hawkeye_sim::Nanos;

/// Epoch layout parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EpochConfig {
    /// log2 of the epoch length in nanoseconds (e.g. 20 -> ~1.05 ms,
    /// matching the paper's "1 ms is approximately 2^20 ns").
    pub shift: u32,
    /// log2 of the number of epochs kept in the ring (e.g. 2 -> 4 epochs).
    pub index_bits: u32,
}

/// Bits of the timestamp used as the wrap-around epoch ID (paper: "the 8
/// bits preceding the epoch index").
pub const EPOCH_ID_BITS: u32 = 8;

impl EpochConfig {
    /// The paper's default: ~1 ms epochs, 4-slot ring.
    pub const DEFAULT: EpochConfig = EpochConfig {
        shift: 20,
        index_bits: 2,
    };

    /// Closest power-of-two config for a requested epoch length.
    pub fn for_epoch_len(len: Nanos, index_bits: u32) -> Self {
        let ns = len.as_nanos().max(1);
        // Round to the nearest power of two (log-domain rounding).
        let hi = 64 - ns.leading_zeros() - 1;
        let shift = if hi >= 63 {
            63
        } else if ns - (1 << hi) > (1 << (hi + 1)) - ns {
            hi + 1
        } else {
            hi
        };
        EpochConfig { shift, index_bits }
    }

    /// Epoch length in nanoseconds.
    pub fn epoch_len(&self) -> Nanos {
        Nanos(1 << self.shift)
    }

    /// Number of ring slots.
    pub fn epoch_count(&self) -> usize {
        1 << self.index_bits
    }

    /// Time span the ring covers before wrapping.
    pub fn ring_span(&self) -> Nanos {
        Nanos((1u64 << self.shift) << self.index_bits)
    }

    /// Ring slot for a timestamp.
    pub fn slot(&self, ts: Nanos) -> usize {
        ((ts.switch_timestamp() >> self.shift) & ((1 << self.index_bits) - 1)) as usize
    }

    /// Wrap-around epoch ID for a timestamp.
    pub fn epoch_id(&self, ts: Nanos) -> u8 {
        ((ts.switch_timestamp() >> (self.shift + self.index_bits)) & ((1 << EPOCH_ID_BITS) - 1))
            as u8
    }

    /// Start instant of the epoch containing `ts` (useful for replay).
    pub fn epoch_start(&self, ts: Nanos) -> Nanos {
        Nanos(ts.as_nanos() >> self.shift << self.shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_example() {
        // Epoch size 1 ms ~= 2^20 ns; slot from timestamp[21:20]; id from
        // timestamp[29:22].
        let c = EpochConfig::DEFAULT;
        assert_eq!(c.epoch_len(), Nanos(1 << 20));
        assert_eq!(c.epoch_count(), 4);
        let ts = Nanos((0b1010_1010 << 22) | (0b11 << 20) | 12345);
        assert_eq!(c.slot(ts), 0b11);
        assert_eq!(c.epoch_id(ts), 0b1010_1010);
    }

    #[test]
    fn slots_advance_and_wrap() {
        let c = EpochConfig::DEFAULT;
        let e = c.epoch_len().as_nanos();
        assert_eq!(c.slot(Nanos(0)), 0);
        assert_eq!(c.slot(Nanos(e)), 1);
        assert_eq!(c.slot(Nanos(3 * e)), 3);
        assert_eq!(c.slot(Nanos(4 * e)), 0, "ring wraps");
        assert_ne!(
            c.epoch_id(Nanos(0)),
            c.epoch_id(Nanos(4 * e)),
            "wrap changes the epoch ID"
        );
    }

    #[test]
    fn epoch_id_wraps_at_8_bits() {
        let c = EpochConfig::DEFAULT;
        let span = c.ring_span().as_nanos();
        assert_eq!(c.epoch_id(Nanos(0)), c.epoch_id(Nanos(span * 256)));
    }

    #[test]
    fn for_epoch_len_picks_nearest_power_of_two() {
        assert_eq!(
            EpochConfig::for_epoch_len(Nanos::from_micros(100), 2).shift,
            17, // 131 us is the closest power of two to 100 us
        );
        assert_eq!(
            EpochConfig::for_epoch_len(Nanos::from_millis(1), 2).shift,
            20
        );
        assert_eq!(
            EpochConfig::for_epoch_len(Nanos::from_millis(2), 2).shift,
            21
        );
        assert_eq!(
            EpochConfig::for_epoch_len(Nanos::from_micros(500), 2).shift,
            19
        );
    }

    #[test]
    fn epoch_start_is_aligned() {
        let c = EpochConfig::DEFAULT;
        let ts = Nanos(3 * (1 << 20) + 777);
        assert_eq!(c.epoch_start(ts), Nanos(3 << 20));
        assert_eq!(c.slot(c.epoch_start(ts)), c.slot(ts));
    }
}
