//! # hawkeye-telemetry
//!
//! The PFC-aware, epoch-based telemetry layer of Hawkeye (§3.3 of the
//! paper), exactly as a P4 pipeline would maintain it:
//!
//! - [`status::PortStatusRegisters`] — real-time per-port PFC pause state,
//!   reconstructed from PFC frames passed into the pipeline (Tofino hides
//!   native PFC state from P4, §3.6).
//! - [`epoch::EpochConfig`] — epoch demarcation by slicing bits out of the
//!   48-bit enqueue timestamp, with 8-bit wrap-around IDs (Fig. 4).
//! - [`tables::FlowTable`] — per-epoch hash-indexed flow slots (5-tuple,
//!   packet count, *paused packet count*, queue-depth sum) with
//!   XOR-match/evict semantics.
//! - [`tables::PortTable`] — per-epoch per-port paused counts and queue
//!   depths, pre-aggregated in the data plane.
//! - [`tables::CausalityMeter`] — the per-port-pair traffic meter of the
//!   PFC causality structure (Fig. 3).
//! - [`switch_state::SwitchTelemetry`] — one switch's complete state plus
//!   the in-switch queries used by polling-packet forwarding.
//! - [`snapshot::TelemetrySnapshot`] — what the switch CPU uploads, with
//!   full-dump vs zero-filtered wire-size accounting for the overhead
//!   experiments.

pub mod compact;
pub mod epoch;
pub mod snapshot;
pub mod status;
pub mod switch_state;
pub mod tables;
pub mod wire;

pub use compact::{CompactedEpoch, FlowTotals, PortTotals};
pub use epoch::{EpochConfig, EPOCH_ID_BITS};
pub use snapshot::{
    EpochSnapshot, TelemetrySnapshot, EPOCH_HEADER_BYTES, FLOW_ENTRY_BYTES, METER_ENTRY_BYTES,
    PORT_ENTRY_BYTES,
};
pub use status::PortStatusRegisters;
pub use switch_state::{SwitchTelemetry, TelemetryConfig};
pub use tables::{CausalityMeter, EvictedFlow, FlowRecord, FlowTable, PortRecord, PortTable};
pub use wire::{
    decode_batch, decode_compacted, decode_snapshot, encode_batch, encode_compacted,
    encode_snapshot, CodecError, KIND_BATCH, KIND_COMPACTED, WIRE_VERSION,
};
