//! Controller-side telemetry snapshots and their wire-size accounting.
//!
//! The overhead experiments (Figs. 9, 14) compare bytes moved per diagnosis
//! across methods, so every snapshot knows both its *full-dump* size (what
//! naive data-plane packet generation would export: entire register arrays)
//! and its *filtered* size (what the CPU poller ships after dropping
//! zero-valued slots, §3.4 / §4.5).

use crate::tables::{EvictedFlow, FlowRecord, PortRecord};
use hawkeye_sim::{FlowKey, Nanos, NodeId};
use serde::{Deserialize, Serialize};

/// Bytes per flow-table entry on the wire: 13 B 5-tuple + pkt count (4) +
/// paused count (4) + queue-depth accumulator (4).
pub const FLOW_ENTRY_BYTES: usize = FlowKey::WIRE_SIZE + 4 + 4 + 4;
/// Bytes per port entry: port (1) + pkt count (4) + paused (4) + qdepth (4).
pub const PORT_ENTRY_BYTES: usize = 1 + 4 + 4 + 4;
/// Bytes per causality-meter cell: in port (1) + out port (1) + volume (4).
pub const METER_ENTRY_BYTES: usize = 1 + 1 + 4;
/// Bytes per epoch header (slot, id, start timestamp).
pub const EPOCH_HEADER_BYTES: usize = 1 + 1 + 6;

/// One epoch's non-zero telemetry from one switch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochSnapshot {
    pub slot: usize,
    pub id: u8,
    /// Reconstructed absolute start time of the epoch.
    pub start: Nanos,
    pub len: Nanos,
    pub flows: Vec<(FlowKey, FlowRecord)>,
    pub ports: Vec<(u8, PortRecord)>,
    /// (in_port, out_port, bytes) triples with non-zero volume.
    pub meter: Vec<(u8, u8, u64)>,
}

impl EpochSnapshot {
    pub fn end(&self) -> Nanos {
        self.start + self.len
    }

    pub fn contains(&self, t: Nanos) -> bool {
        t >= self.start && t < self.end()
    }

    /// Filtered wire size of this epoch (non-zero rows only).
    pub fn wire_size(&self) -> usize {
        EPOCH_HEADER_BYTES
            + self.flows.len() * FLOW_ENTRY_BYTES
            + self.ports.len() * PORT_ENTRY_BYTES
            + self.meter.len() * METER_ENTRY_BYTES
    }
}

/// Everything a switch CPU uploads to the analyzer for one collection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    pub switch: NodeId,
    pub taken_at: Nanos,
    pub nports: usize,
    /// Flow-table capacity per epoch (for full-dump size accounting).
    pub max_flows: usize,
    pub epochs: Vec<EpochSnapshot>,
    pub evicted: Vec<EvictedFlow>,
}

impl TelemetrySnapshot {
    /// Bytes shipped after CPU zero-filtering — Hawkeye's actual overhead.
    pub fn wire_size_filtered(&self) -> usize {
        self.epochs
            .iter()
            .map(EpochSnapshot::wire_size)
            .sum::<usize>()
            + self.evicted.len() * (FLOW_ENTRY_BYTES + 2)
    }

    /// Bytes a full data-plane register dump would ship: every slot of
    /// every table, occupied or not.
    pub fn wire_size_full(&self) -> usize {
        let per_epoch = EPOCH_HEADER_BYTES
            + self.max_flows * FLOW_ENTRY_BYTES
            + self.nports * PORT_ENTRY_BYTES
            + self.nports * self.nports * METER_ENTRY_BYTES;
        self.epochs.len().max(1) * per_epoch + self.evicted.len() * (FLOW_ENTRY_BYTES + 2)
    }

    /// Number of distinct flows across epochs (concurrent-flow occupancy,
    /// the x-axis driver of Fig. 14).
    pub fn distinct_flows(&self) -> usize {
        let mut keys: Vec<FlowKey> = self
            .epochs
            .iter()
            .flat_map(|e| e.flows.iter().map(|(k, _)| *k))
            .chain(self.evicted.iter().map(|e| e.key))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }

    /// Report packets needed at a given payload capacity per packet.
    pub fn report_packets(&self, payload_bytes: usize) -> usize {
        self.wire_size_filtered().div_ceil(payload_bytes).max(1)
    }

    /// End time of the newest epoch carried (the snapshot's information
    /// horizon; `taken_at` if it carries no epochs).
    pub fn newest_epoch_end(&self) -> Nanos {
        self.epochs
            .iter()
            .map(EpochSnapshot::end)
            .max()
            .unwrap_or(self.taken_at)
    }

    /// Degrade to a *stale* read: remove the newest epoch, as if the CPU
    /// read raced the telemetry ring and missed the in-flight slot. Returns
    /// whether an epoch was dropped (a single-epoch snapshot is left
    /// intact — there is nothing older to fall back to).
    pub fn make_stale(&mut self) -> bool {
        if self.epochs.len() < 2 {
            return false;
        }
        let newest = self
            .epochs
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| e.end())
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.epochs.remove(newest);
        true
    }

    /// Degrade to a *truncated* upload: the transfer was cut short, so each
    /// epoch keeps only the first half of its flow rows (the register scan
    /// is in slot order, so the tail is what's lost). Returns rows cut.
    pub fn truncate_flows(&mut self) -> usize {
        let mut cut = 0;
        for e in &mut self.epochs {
            let keep = e.flows.len() / 2;
            cut += e.flows.len() - keep;
            e.flows.truncate(keep);
        }
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(nflows: usize) -> TelemetrySnapshot {
        let key = |i: u16| FlowKey::roce(NodeId(0), NodeId(1), i);
        TelemetrySnapshot {
            switch: NodeId(5),
            taken_at: Nanos(1000),
            nports: 4,
            max_flows: 4096,
            epochs: vec![EpochSnapshot {
                slot: 0,
                id: 1,
                start: Nanos(0),
                len: Nanos(1 << 20),
                flows: (0..nflows as u16)
                    .map(|i| (key(i), FlowRecord::default()))
                    .collect(),
                ports: vec![(0, PortRecord::default())],
                meter: vec![(0, 1, 500)],
            }],
            evicted: vec![],
        }
    }

    #[test]
    fn filtered_size_scales_with_occupancy() {
        let small = snap(2).wire_size_filtered();
        let large = snap(200).wire_size_filtered();
        assert_eq!(large - small, 198 * FLOW_ENTRY_BYTES);
    }

    #[test]
    fn full_dump_dwarfs_filtered_at_low_occupancy() {
        let s = snap(10);
        // 4096-slot table vs 10 occupied: >80% reduction (Fig. 14a).
        let reduction = 1.0 - s.wire_size_filtered() as f64 / s.wire_size_full() as f64;
        assert!(reduction > 0.8, "reduction {reduction}");
    }

    #[test]
    fn report_packet_batching() {
        let s = snap(500);
        // MTU batching (1500 B) vs tiny per-PHV packets (~200 B usable).
        let mtu = s.report_packets(1500);
        let phv = s.report_packets(200);
        assert!(mtu < phv);
        assert!(mtu >= 1);
        assert_eq!(
            s.report_packets(usize::MAX / 2),
            1,
            "everything fits in one jumbo report"
        );
    }

    #[test]
    fn distinct_flow_counting_dedups_across_epochs() {
        let mut s = snap(3);
        let mut extra = s.epochs[0].clone();
        extra.slot = 1;
        extra.start = Nanos(1 << 20);
        s.epochs.push(extra);
        assert_eq!(s.distinct_flows(), 3);
    }

    #[test]
    fn epoch_time_containment() {
        let s = snap(1);
        let e = &s.epochs[0];
        assert!(e.contains(Nanos(5)));
        assert!(!e.contains(e.end()));
        assert_eq!(e.end(), Nanos(1 << 20));
    }
}
