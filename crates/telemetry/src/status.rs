//! Per-port PFC status registers (§3.3 "Port Status" and §3.6 "Enable PFC
//! awareness for P4").
//!
//! Tofino does not expose real-time port PFC state to P4, so Hawkeye passes
//! PFC frames into the pipeline and maintains its own registers: for each
//! port, whether the data class is currently paused and until when. Data
//! packets enqueued while the register says "paused" are counted as *paused
//! packets* in flow and port telemetry.

use hawkeye_sim::{Nanos, PfcEvent};

/// PFC pause state of every port of one switch.
#[derive(Debug, Clone)]
pub struct PortStatusRegisters {
    pause_until: Vec<Nanos>,
    /// Total PAUSE frames seen per port (diagnostic counter).
    pause_frames: Vec<u64>,
}

impl PortStatusRegisters {
    pub fn new(nports: usize) -> Self {
        PortStatusRegisters {
            pause_until: vec![Nanos::ZERO; nports],
            pause_frames: vec![0; nports],
        }
    }

    pub fn port_count(&self) -> usize {
        self.pause_until.len()
    }

    /// Update from a PFC frame the pipeline observed at `ev.port`.
    pub fn on_pfc(&mut self, ev: &PfcEvent) {
        let p = ev.port as usize;
        if ev.pause {
            self.pause_frames[p] += 1;
            self.pause_until[p] = ev.now + ev.pause_time;
        } else {
            self.pause_until[p] = ev.now;
        }
    }

    /// Is the data class of `port` paused at `now`?
    pub fn is_paused(&self, port: u8, now: Nanos) -> bool {
        self.pause_until[port as usize] > now
    }

    /// Remaining pause time of `port` at `now`.
    pub fn remaining(&self, port: u8, now: Nanos) -> Nanos {
        self.pause_until[port as usize].saturating_sub(now)
    }

    pub fn pause_frames(&self, port: u8) -> u64 {
        self.pause_frames[port as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_sim::NodeId;

    fn ev(port: u8, pause: bool, pause_time: u64, now: u64) -> PfcEvent {
        PfcEvent {
            switch: NodeId(0),
            port,
            class: 0,
            pause,
            pause_time: Nanos(pause_time),
            now: Nanos(now),
        }
    }

    #[test]
    fn pause_sets_deadline_resume_clears() {
        let mut r = PortStatusRegisters::new(4);
        assert!(!r.is_paused(1, Nanos(0)));
        r.on_pfc(&ev(1, true, 1000, 100));
        assert!(r.is_paused(1, Nanos(500)));
        assert_eq!(r.remaining(1, Nanos(600)), Nanos(500));
        assert!(!r.is_paused(1, Nanos(1100)), "expires at now+pause_time");
        r.on_pfc(&ev(1, true, 1000, 200));
        r.on_pfc(&ev(1, false, 0, 300));
        assert!(!r.is_paused(1, Nanos(301)));
    }

    #[test]
    fn ports_are_independent() {
        let mut r = PortStatusRegisters::new(4);
        r.on_pfc(&ev(2, true, 5000, 0));
        assert!(r.is_paused(2, Nanos(10)));
        assert!(!r.is_paused(0, Nanos(10)));
        assert!(!r.is_paused(3, Nanos(10)));
        assert_eq!(r.pause_frames(2), 1);
        assert_eq!(r.pause_frames(0), 0);
    }

    #[test]
    fn refresh_extends_pause() {
        let mut r = PortStatusRegisters::new(2);
        r.on_pfc(&ev(0, true, 1000, 0));
        r.on_pfc(&ev(0, true, 1000, 800));
        assert!(r.is_paused(0, Nanos(1500)));
        assert_eq!(r.pause_frames(0), 2);
    }
}
