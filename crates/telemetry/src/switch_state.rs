//! The complete Hawkeye telemetry state of one switch: PFC status
//! registers, and an epoch ring of {flow table, port table, causality
//! meter}, updated per enqueued packet exactly as the P4 pipeline would.

use crate::epoch::EpochConfig;
use crate::snapshot::{EpochSnapshot, TelemetrySnapshot};
use crate::status::PortStatusRegisters;
use crate::tables::{CausalityMeter, EvictedFlow, FlowTable, PortTable};
use hawkeye_sim::{EnqueueRecord, FlowKey, Nanos, NodeId, PfcEvent};

/// Sizing of the telemetry state (per switch).
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    pub epochs: EpochConfig,
    /// Flow-table slots per epoch (the paper's testbed uses 4096).
    pub max_flows: usize,
    /// How many ring epochs (newest first) in-switch causality queries
    /// consult. A slowly-developing anomaly (a deadlock loop takes hundreds
    /// of microseconds to close) must still be traceable by later polling
    /// rounds, so the default consults the whole ring.
    pub query_lookback: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            epochs: EpochConfig::DEFAULT,
            max_flows: 4096,
            query_lookback: 4,
        }
    }
}

#[derive(Debug, Clone)]
struct EpochSlot {
    id: Option<u8>,
    flows: FlowTable,
    ports: PortTable,
    meter: CausalityMeter,
}

/// Telemetry pipeline state of one switch.
#[derive(Debug, Clone)]
pub struct SwitchTelemetry {
    switch: NodeId,
    nports: usize,
    cfg: TelemetryConfig,
    status: PortStatusRegisters,
    ring: Vec<EpochSlot>,
    /// Hash-collision evictions ("stored at the controller").
    pub evicted: Vec<EvictedFlow>,
}

impl SwitchTelemetry {
    pub fn new(switch: NodeId, nports: usize, cfg: TelemetryConfig) -> Self {
        let ring = (0..cfg.epochs.epoch_count())
            .map(|_| EpochSlot {
                id: None,
                flows: FlowTable::new(cfg.max_flows),
                ports: PortTable::new(nports),
                meter: CausalityMeter::new(nports),
            })
            .collect();
        SwitchTelemetry {
            switch,
            nports,
            cfg,
            status: PortStatusRegisters::new(nports),
            ring,
            evicted: Vec::new(),
        }
    }

    pub fn switch(&self) -> NodeId {
        self.switch
    }

    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    pub fn status(&self) -> &PortStatusRegisters {
        &self.status
    }

    /// Data-packet enqueue: the per-packet register update path.
    pub fn on_enqueue(&mut self, rec: &EnqueueRecord) {
        let paused = self.status.is_paused(rec.out_port, rec.timestamp);
        let slot_idx = self.cfg.epochs.slot(rec.timestamp);
        let id = self.cfg.epochs.epoch_id(rec.timestamp);
        let slot = &mut self.ring[slot_idx];
        if slot.id != Some(id) {
            // Wrap-around: a newer epoch ID claims this ring slot.
            slot.flows.reset();
            slot.ports.reset();
            slot.meter.reset();
            slot.id = Some(id);
        }
        if let Some((key, record)) =
            slot.flows
                .update(&rec.key, paused, rec.qdepth_pkts, rec.out_port)
        {
            self.evicted.push(EvictedFlow {
                key,
                record,
                epoch_id: id,
                slot: slot_idx,
            });
        }
        slot.ports.update(rec.out_port, paused, rec.qdepth_pkts);
        slot.meter.add(rec.in_port, rec.out_port, rec.size);
    }

    /// PFC frame observed: update the status register.
    pub fn on_pfc(&mut self, ev: &PfcEvent) {
        self.status.on_pfc(ev);
    }

    /// Ring slots ordered newest-first starting from the epoch containing
    /// `now`, limited to `query_lookback` and to slots whose stored ID
    /// matches what the timestamp arithmetic expects (stale slots excluded).
    fn recent_slots(&self, now: Nanos) -> impl Iterator<Item = &EpochSlot> {
        let ec = self.cfg.epochs;
        let count = ec.epoch_count();
        let lookback = self.cfg.query_lookback.min(count);
        (0..lookback).filter_map(move |back| {
            let delta = ec.epoch_len().as_nanos() * back as u64;
            if delta > now.as_nanos() {
                return None; // before the simulation epoch 0
            }
            let ts = Nanos(now.as_nanos() - delta);
            let slot = &self.ring[ec.slot(ts)];
            (slot.id == Some(ec.epoch_id(ts))).then_some(slot)
        })
    }

    /// Paused-packet count of `key` over the recent epochs — the egress
    /// check a switch performs on a victim-path polling packet (Fig. 6).
    pub fn flow_paused_count(&self, key: &FlowKey, now: Nanos) -> u32 {
        self.recent_slots(now)
            .filter_map(|s| s.flows.get(key))
            .map(|r| r.paused_count)
            .sum()
    }

    /// The egress port recorded for `key`, if any packets were seen.
    pub fn flow_out_port(&self, key: &FlowKey, now: Nanos) -> Option<u8> {
        self.recent_slots(now)
            .filter_map(|s| s.flows.get(key))
            .map(|r| r.out_port)
            .next()
    }

    /// Paused-packet count of an egress port over the recent epochs.
    pub fn port_paused_count(&self, port: u8, now: Nanos) -> u32 {
        self.recent_slots(now)
            .map(|s| s.ports.get(port).paused_count)
            .sum()
    }

    /// Causal egress ports for PFC backpressure arriving from `in_port`:
    /// ports that carried traffic from `in_port` in the recent epochs,
    /// with the byte volumes (Fig. 3 check).
    pub fn causal_out_ports(&self, in_port: u8, now: Nanos) -> Vec<(u8, u64)> {
        let mut acc = vec![0u64; self.nports];
        for s in self.recent_slots(now) {
            for (p, b) in s.meter.causal_out_ports(in_port) {
                acc[p as usize] += b;
            }
        }
        acc.into_iter()
            .enumerate()
            .filter(|&(_, b)| b > 0)
            .map(|(p, b)| (p as u8, b))
            .collect()
    }

    /// Controller read-out: every valid epoch's non-zero telemetry, plus
    /// evictions and sizing, for upload to the analyzer.
    pub fn snapshot(&self, now: Nanos) -> TelemetrySnapshot {
        let ec = self.cfg.epochs;
        let mut epochs = Vec::new();
        for (slot_idx, slot) in self.ring.iter().enumerate() {
            let Some(id) = slot.id else { continue };
            let Some(start) = ec.locate(slot_idx, id, now) else {
                continue;
            };
            epochs.push(EpochSnapshot {
                slot: slot_idx,
                id,
                start,
                len: ec.epoch_len(),
                flows: slot.flows.entries().map(|(k, r)| (*k, *r)).collect(),
                ports: slot
                    .ports
                    .iter()
                    .filter(|(_, r)| r.pkt_count > 0)
                    .map(|(p, r)| (p, *r))
                    .collect(),
                meter: (0..self.nports as u8)
                    .flat_map(|i| {
                        slot.meter
                            .causal_out_ports(i)
                            .map(move |(o, b)| (i, o, b))
                            .collect::<Vec<_>>()
                    })
                    .collect(),
            });
        }
        epochs.sort_by_key(|e| e.start);
        TelemetrySnapshot {
            switch: self.switch,
            taken_at: now,
            nports: self.nports,
            max_flows: self.cfg.max_flows,
            epochs,
            evicted: self.evicted.clone(),
        }
    }
}

impl EpochConfig {
    /// Find the start time of the most recent epoch at or before `now`
    /// occupying ring `slot` with epoch ID `id`. Returns `None` if no epoch
    /// within one full ID wrap matches (the slot data would be too old to
    /// interpret).
    pub fn locate(&self, slot: usize, id: u8, now: Nanos) -> Option<Nanos> {
        let mut start = self.epoch_start(now);
        // One ID wrap covers epoch_count * 256 epochs.
        for _ in 0..self.epoch_count() * (1 << crate::epoch::EPOCH_ID_BITS) {
            if self.slot(start) == slot && self.epoch_id(start) == id {
                return Some(start);
            }
            if start.as_nanos() < self.epoch_len().as_nanos() {
                return None;
            }
            start = start - self.epoch_len();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_sim::NodeId;

    fn rec(key: FlowKey, in_port: u8, out_port: u8, qdepth: u32, ts: Nanos) -> EnqueueRecord {
        EnqueueRecord {
            switch: NodeId(100),
            in_port,
            out_port,
            flow: hawkeye_sim::FlowId(0),
            key,
            size: 1048,
            qdepth_pkts: qdepth,
            qdepth_bytes: qdepth as u64 * 1048,
            egress_paused: false,
            timestamp: ts,
        }
    }

    fn pfc(port: u8, pause: bool, dur: u64, now: Nanos) -> PfcEvent {
        PfcEvent {
            switch: NodeId(100),
            port,
            class: 0,
            pause,
            pause_time: Nanos(dur),
            now,
        }
    }

    fn tele() -> SwitchTelemetry {
        SwitchTelemetry::new(NodeId(100), 4, TelemetryConfig::default())
    }

    #[test]
    fn paused_packets_follow_the_status_register() {
        let mut t = tele();
        let key = FlowKey::roce(NodeId(0), NodeId(1), 7);
        let now = Nanos(1000);
        t.on_enqueue(&rec(key, 0, 2, 1, now));
        assert_eq!(t.flow_paused_count(&key, now), 0);
        // Pause port 2, enqueue again: counted as paused.
        t.on_pfc(&pfc(2, true, 100_000, Nanos(2000)));
        t.on_enqueue(&rec(key, 0, 2, 2, Nanos(3000)));
        assert_eq!(t.flow_paused_count(&key, Nanos(3000)), 1);
        assert_eq!(t.port_paused_count(2, Nanos(3000)), 1);
        // Port 3 untouched.
        assert_eq!(t.port_paused_count(3, Nanos(3000)), 0);
        // Resume: new enqueues not counted.
        t.on_pfc(&pfc(2, false, 0, Nanos(4000)));
        t.on_enqueue(&rec(key, 0, 2, 3, Nanos(5000)));
        assert_eq!(t.flow_paused_count(&key, Nanos(5000)), 1);
    }

    #[test]
    fn causal_ports_reflect_the_meter() {
        let mut t = tele();
        let k1 = FlowKey::roce(NodeId(0), NodeId(1), 1);
        let k2 = FlowKey::roce(NodeId(0), NodeId(2), 2);
        let now = Nanos(1000);
        t.on_enqueue(&rec(k1, 1, 3, 0, now));
        t.on_enqueue(&rec(k2, 1, 2, 0, now));
        t.on_enqueue(&rec(k2, 0, 2, 0, now));
        let causal = t.causal_out_ports(1, now);
        assert_eq!(causal, vec![(2, 1048), (3, 1048)]);
        assert_eq!(t.causal_out_ports(2, now), vec![]);
    }

    #[test]
    fn epoch_wraparound_resets_slots() {
        let mut t = tele();
        let key = FlowKey::roce(NodeId(0), NodeId(1), 7);
        let ec = t.cfg.epochs;
        let t0 = Nanos(100);
        t.on_enqueue(&rec(key, 0, 2, 0, t0));
        assert_eq!(t.flow_paused_count(&key, t0), 0);
        // Same ring slot, one full ring later: different epoch ID.
        let t1 = t0 + ec.ring_span();
        assert_eq!(ec.slot(t0), ec.slot(t1));
        assert_ne!(ec.epoch_id(t0), ec.epoch_id(t1));
        t.on_enqueue(&rec(key, 0, 2, 0, t1));
        let snap = t.snapshot(t1);
        // Only the new epoch's data exists in that slot.
        let e = snap.epochs.iter().find(|e| e.slot == ec.slot(t1)).unwrap();
        let (_, fr) = e.flows.iter().find(|(k, _)| *k == key).unwrap();
        assert_eq!(fr.pkt_count, 1, "old epoch data must be gone");
    }

    #[test]
    fn lookback_spans_epoch_boundary() {
        let mut t = SwitchTelemetry::new(
            NodeId(100),
            4,
            TelemetryConfig {
                query_lookback: 2,
                ..Default::default()
            },
        );
        let key = FlowKey::roce(NodeId(0), NodeId(1), 7);
        let ec = t.cfg.epochs;
        t.on_pfc(&pfc(2, true, u64::MAX / 2, Nanos(0)));
        // Enqueue near the end of epoch 0.
        let late = ec.epoch_len() - Nanos(10);
        t.on_enqueue(&rec(key, 0, 2, 0, late));
        // Query early in epoch 1: lookback=2 must still see it.
        let early = ec.epoch_len() + Nanos(10);
        assert_eq!(t.flow_paused_count(&key, early), 1);
        // Query two epochs later: out of lookback.
        let later = Nanos(ec.epoch_len().as_nanos() * 2 + 10);
        assert_eq!(t.flow_paused_count(&key, later), 0);
    }

    #[test]
    fn evictions_are_preserved() {
        let mut t = SwitchTelemetry::new(
            NodeId(100),
            4,
            TelemetryConfig {
                max_flows: 1,
                ..Default::default()
            },
        );
        let k1 = FlowKey::roce(NodeId(0), NodeId(1), 1);
        let k2 = FlowKey::roce(NodeId(0), NodeId(2), 2);
        let now = Nanos(1000);
        t.on_enqueue(&rec(k1, 0, 2, 0, now));
        t.on_enqueue(&rec(k2, 0, 2, 0, now));
        assert_eq!(t.evicted.len(), 1);
        assert_eq!(t.evicted[0].key, k1);
        let snap = t.snapshot(now);
        assert_eq!(snap.evicted.len(), 1);
    }

    #[test]
    fn locate_reconstructs_epoch_start() {
        let ec = EpochConfig::DEFAULT;
        let e = ec.epoch_len().as_nanos();
        // Epoch starting at 5*e occupies slot 1 (5 mod 4).
        let start = Nanos(5 * e);
        let id = ec.epoch_id(start);
        let now = Nanos(6 * e + 123);
        assert_eq!(ec.locate(1, id, now), Some(start));
        // A mismatching ID locates the previous ring pass.
        let old_id = ec.epoch_id(Nanos(e)); // slot 1, one ring earlier
        assert_eq!(ec.locate(1, old_id, now), Some(Nanos(e)));
    }

    #[test]
    fn snapshot_contains_only_nonzero_rows() {
        let mut t = tele();
        let key = FlowKey::roce(NodeId(0), NodeId(1), 7);
        let now = Nanos(1000);
        t.on_enqueue(&rec(key, 1, 2, 4, now));
        let snap = t.snapshot(now);
        assert_eq!(snap.epochs.len(), 1);
        let e = &snap.epochs[0];
        assert_eq!(e.flows.len(), 1);
        assert_eq!(e.ports.len(), 1);
        assert_eq!(e.meter, vec![(1, 2, 1048)]);
        assert_eq!(snap.max_flows, 4096);
    }
}
