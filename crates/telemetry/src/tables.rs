//! Per-epoch telemetry tables: hash-indexed flow slots, per-port counters,
//! and the port-pair causality meter (§3.3, Figs. 3–4).

use hawkeye_sim::FlowKey;
use serde::{Deserialize, Serialize};

/// Telemetry accumulated for one flow within one epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// Packets enqueued.
    pub pkt_count: u32,
    /// Packets enqueued while the egress port's PFC register said "paused".
    pub paused_count: u32,
    /// Sum over packets of the egress queue depth (in packets) seen at
    /// enqueue; divide by `pkt_count` for the average.
    pub qdepth_sum: u64,
    /// Egress port the flow used (first observed; one per switch since
    /// routing is deterministic per 5-tuple).
    pub out_port: u8,
}

impl FlowRecord {
    pub fn avg_qdepth(&self) -> f64 {
        if self.pkt_count == 0 {
            0.0
        } else {
            self.qdepth_sum as f64 / self.pkt_count as f64
        }
    }
}

/// A flow entry evicted from the data-plane table by a hash collision
/// ("the existing entry will be evicted and stored at the controller").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvictedFlow {
    pub key: FlowKey,
    pub record: FlowRecord,
    /// Epoch ID the entry belonged to when evicted.
    pub epoch_id: u8,
    /// Ring slot it occupied.
    pub slot: usize,
}

/// The per-epoch hash-indexed flow table.
///
/// A slot holds one flow; the incoming packet's 5-tuple is XOR-compared
/// against the stored one (result 0 = same flow, update; otherwise evict
/// and install). Evictions go to `evicted`, emulating the controller-side
/// store.
#[derive(Debug, Clone)]
pub struct FlowTable {
    slots: Vec<Option<(FlowKey, FlowRecord)>>,
}

impl FlowTable {
    pub fn new(size: usize) -> Self {
        assert!(
            size.is_power_of_two(),
            "flow table size must be a power of two"
        );
        FlowTable {
            slots: vec![None; size],
        }
    }

    pub fn size(&self) -> usize {
        self.slots.len()
    }

    pub fn reset(&mut self) {
        self.slots.fill(None);
    }

    fn index(&self, key: &FlowKey) -> usize {
        (key.hash32() as usize) & (self.slots.len() - 1)
    }

    /// Record one enqueued packet for `key`; returns the evicted occupant
    /// on hash collision.
    pub fn update(
        &mut self,
        key: &FlowKey,
        paused: bool,
        qdepth_pkts: u32,
        out_port: u8,
    ) -> Option<(FlowKey, FlowRecord)> {
        let i = self.index(key);
        let mut evicted = None;
        match &mut self.slots[i] {
            Some((k, rec)) if k == key => {
                rec.pkt_count += 1;
                rec.paused_count += paused as u32;
                rec.qdepth_sum += qdepth_pkts as u64;
                return None;
            }
            occ => {
                if let Some(old) = occ.take() {
                    evicted = Some(old);
                }
                *occ = Some((
                    *key,
                    FlowRecord {
                        pkt_count: 1,
                        paused_count: paused as u32,
                        qdepth_sum: qdepth_pkts as u64,
                        out_port,
                    },
                ));
            }
        }
        evicted
    }

    pub fn get(&self, key: &FlowKey) -> Option<&FlowRecord> {
        let i = self.index(key);
        match &self.slots[i] {
            Some((k, rec)) if k == key => Some(rec),
            _ => None,
        }
    }

    /// All occupied slots.
    pub fn entries(&self) -> impl Iterator<Item = (&FlowKey, &FlowRecord)> {
        self.slots.iter().flatten().map(|(k, r)| (k, r))
    }

    pub fn occupancy(&self) -> usize {
        self.slots.iter().flatten().count()
    }
}

/// Per-epoch per-port counters (paused packets + queue depth), kept at port
/// granularity in the data plane so diagnosis does not have to aggregate
/// flow telemetry (§3.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortRecord {
    pub pkt_count: u32,
    pub paused_count: u32,
    pub qdepth_sum: u64,
}

impl PortRecord {
    pub fn avg_qdepth(&self) -> f64 {
        if self.pkt_count == 0 {
            0.0
        } else {
            self.qdepth_sum as f64 / self.pkt_count as f64
        }
    }
}

/// Per-epoch port table, indexed by egress port number.
#[derive(Debug, Clone)]
pub struct PortTable {
    ports: Vec<PortRecord>,
}

impl PortTable {
    pub fn new(nports: usize) -> Self {
        PortTable {
            ports: vec![PortRecord::default(); nports],
        }
    }

    pub fn reset(&mut self) {
        self.ports.fill(PortRecord::default());
    }

    pub fn update(&mut self, out_port: u8, paused: bool, qdepth_pkts: u32) {
        let r = &mut self.ports[out_port as usize];
        r.pkt_count += 1;
        r.paused_count += paused as u32;
        r.qdepth_sum += qdepth_pkts as u64;
    }

    pub fn get(&self, port: u8) -> &PortRecord {
        &self.ports[port as usize]
    }

    pub fn iter(&self) -> impl Iterator<Item = (u8, &PortRecord)> {
        self.ports.iter().enumerate().map(|(i, r)| (i as u8, r))
    }
}

/// The PFC causality structure (Fig. 3): a traffic meter per (ingress,
/// egress) port pair, recording how many bytes entering on `in_port` left
/// via `out_port` during the epoch. When the upstream switch behind
/// `in_port` complains about PFC backpressure, the causally relevant
/// egresses are exactly those with non-zero meters — far finer-grained than
/// ITSY's single presence bit.
#[derive(Debug, Clone)]
pub struct CausalityMeter {
    nports: usize,
    bytes: Vec<u64>, // row-major [in_port][out_port]
}

impl CausalityMeter {
    pub fn new(nports: usize) -> Self {
        CausalityMeter {
            nports,
            bytes: vec![0; nports * nports],
        }
    }

    pub fn reset(&mut self) {
        self.bytes.fill(0);
    }

    pub fn add(&mut self, in_port: u8, out_port: u8, bytes: u32) {
        self.bytes[in_port as usize * self.nports + out_port as usize] += bytes as u64;
    }

    pub fn get(&self, in_port: u8, out_port: u8) -> u64 {
        self.bytes[in_port as usize * self.nports + out_port as usize]
    }

    /// Total bytes that entered via `in_port` (the denominator of the
    /// port-level edge weight in Algorithm 1).
    pub fn ingress_total(&self, in_port: u8) -> u64 {
        let base = in_port as usize * self.nports;
        self.bytes[base..base + self.nports].iter().sum()
    }

    /// Egress ports that carried traffic from `in_port`.
    pub fn causal_out_ports(&self, in_port: u8) -> impl Iterator<Item = (u8, u64)> + '_ {
        let base = in_port as usize * self.nports;
        self.bytes[base..base + self.nports]
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > 0)
            .map(|(i, &b)| (i as u8, b))
    }

    pub fn nports(&self) -> usize {
        self.nports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_sim::NodeId;

    fn key(sp: u16) -> FlowKey {
        FlowKey::roce(NodeId(1), NodeId(2), sp)
    }

    #[test]
    fn flow_table_updates_in_place() {
        let mut t = FlowTable::new(16);
        assert!(t.update(&key(1), false, 3, 2).is_none());
        assert!(t.update(&key(1), true, 5, 2).is_none());
        let r = t.get(&key(1)).unwrap();
        assert_eq!(r.pkt_count, 2);
        assert_eq!(r.paused_count, 1);
        assert_eq!(r.qdepth_sum, 8);
        assert_eq!(r.avg_qdepth(), 4.0);
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn flow_table_evicts_on_collision() {
        // Size-1 table forces every distinct flow to collide.
        let mut t = FlowTable::new(1);
        assert!(t.update(&key(1), false, 0, 0).is_none());
        let ev = t.update(&key(2), false, 0, 0).expect("collision evicts");
        assert_eq!(ev.0, key(1));
        assert_eq!(ev.1.pkt_count, 1);
        assert!(t.get(&key(1)).is_none());
        assert!(t.get(&key(2)).is_some());
    }

    #[test]
    fn flow_table_reset_clears() {
        let mut t = FlowTable::new(8);
        t.update(&key(1), false, 0, 0);
        t.reset();
        assert_eq!(t.occupancy(), 0);
        assert!(t.get(&key(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "power of")]
    fn flow_table_requires_power_of_two() {
        FlowTable::new(10);
    }

    #[test]
    fn port_table_counts() {
        let mut t = PortTable::new(4);
        t.update(2, true, 7);
        t.update(2, false, 3);
        t.update(0, false, 0);
        assert_eq!(t.get(2).pkt_count, 2);
        assert_eq!(t.get(2).paused_count, 1);
        assert_eq!(t.get(2).avg_qdepth(), 5.0);
        assert_eq!(t.get(1).pkt_count, 0);
        assert_eq!(t.iter().filter(|(_, r)| r.pkt_count > 0).count(), 2);
    }

    #[test]
    fn meter_tracks_port_pairs() {
        let mut m = CausalityMeter::new(4);
        m.add(1, 3, 1000);
        m.add(1, 3, 500);
        m.add(1, 2, 100);
        m.add(0, 3, 700);
        assert_eq!(m.get(1, 3), 1500);
        assert_eq!(m.ingress_total(1), 1600);
        let causal: Vec<_> = m.causal_out_ports(1).collect();
        assert_eq!(causal, vec![(2, 100), (3, 1500)]);
        // Fig. 3's point: an egress with no traffic from this ingress is
        // not causal, even if it is PFC-congested.
        assert!(m.causal_out_ports(1).all(|(p, _)| p != 0));
        m.reset();
        assert_eq!(m.ingress_total(1), 0);
    }
}
