//! Compact binary codec for [`TelemetrySnapshot`]s.
//!
//! The online store and the serve protocol move snapshots constantly; the
//! JSON edge formats are an order of magnitude larger and allocate per
//! field. This codec is a fixed-layout little-endian encoding: a one-byte
//! version tag, fixed-width scalars, `u32` element counts before each
//! repeated section. No external dependencies, no varints — the snapshot
//! volume is dominated by flow records whose counters use their full width
//! anyway, and a fixed layout keeps decode branch-free.
//!
//! The encoding is canonical: encoding a decoded snapshot reproduces the
//! input bytes exactly (there is one representation per value), which the
//! store's byte-for-byte reconciliation tests rely on.

use crate::compact::{CompactedEpoch, FlowTotals, PortTotals};
use crate::snapshot::{EpochSnapshot, TelemetrySnapshot};
use crate::tables::{EvictedFlow, FlowRecord, PortRecord};
use hawkeye_sim::{FlowKey, Nanos, NodeId};
use std::fmt;

/// Version tag leading every encoded snapshot; bump on layout change.
pub const WIRE_VERSION: u8 = 1;

/// Decode failure: structurally invalid bytes (truncation, bad version,
/// absurd counts). Carries enough context to log usefully at the frame
/// boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the layout said it should.
    Truncated { need: usize, have: usize },
    /// Leading version byte is not [`WIRE_VERSION`].
    Version(u8),
    /// An element count exceeds the sanity bound for its section.
    Oversized { section: &'static str, count: u32 },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { need, have } => {
                write!(f, "truncated snapshot: need {need} bytes, have {have}")
            }
            CodecError::Version(v) => {
                write!(f, "unsupported wire version {v} (expected {WIRE_VERSION})")
            }
            CodecError::Oversized { section, count } => {
                write!(f, "implausible {section} count {count}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Per-section element ceiling: a real switch exports at most a few
/// thousand flows per epoch; anything near this bound is a corrupt or
/// hostile frame, rejected before allocation.
const MAX_COUNT: u32 = 1 << 20;

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn count(&mut self, n: usize) {
        debug_assert!(n <= MAX_COUNT as usize, "section count {n} over bound");
        self.u32(n as u32);
    }
    fn flow_key(&mut self, k: &FlowKey) {
        self.u32(k.src.0);
        self.u32(k.dst.0);
        self.u16(k.src_port);
        self.u16(k.dst_port);
        self.u8(k.proto);
    }
    fn flow_record(&mut self, r: &FlowRecord) {
        self.u32(r.pkt_count);
        self.u32(r.paused_count);
        self.u64(r.qdepth_sum);
        self.u8(r.out_port);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() - self.pos < n {
            return Err(CodecError::Truncated {
                need: self.pos + n,
                have: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }
    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }
    fn count(&mut self, section: &'static str) -> Result<usize, CodecError> {
        let n = self.u32()?;
        if n > MAX_COUNT {
            return Err(CodecError::Oversized { section, count: n });
        }
        Ok(n as usize)
    }
    fn flow_key(&mut self) -> Result<FlowKey, CodecError> {
        Ok(FlowKey {
            src: NodeId(self.u32()?),
            dst: NodeId(self.u32()?),
            src_port: self.u16()?,
            dst_port: self.u16()?,
            proto: self.u8()?,
        })
    }
    fn flow_record(&mut self) -> Result<FlowRecord, CodecError> {
        Ok(FlowRecord {
            pkt_count: self.u32()?,
            paused_count: self.u32()?,
            qdepth_sum: self.u64()?,
            out_port: self.u8()?,
        })
    }
}

/// Encode a snapshot into the versioned binary layout.
pub fn encode_snapshot(s: &TelemetrySnapshot) -> Vec<u8> {
    let mut w = Writer {
        buf: Vec::with_capacity(64 + s.epochs.len() * 64),
    };
    w.u8(WIRE_VERSION);
    write_snapshot_body(&mut w, s);
    w.buf
}

/// The snapshot layout minus the version tag — shared between the
/// single-snapshot frame and the batch frame, which prefixes the version
/// (and kind/count header) once for the whole batch.
fn write_snapshot_body(w: &mut Writer, s: &TelemetrySnapshot) {
    w.u32(s.switch.0);
    w.u64(s.taken_at.0);
    w.u32(s.nports as u32);
    w.u32(s.max_flows as u32);
    w.count(s.epochs.len());
    for ep in &s.epochs {
        w.u32(ep.slot as u32);
        w.u8(ep.id);
        w.u64(ep.start.0);
        w.u64(ep.len.0);
        w.count(ep.flows.len());
        for (k, r) in &ep.flows {
            w.flow_key(k);
            w.flow_record(r);
        }
        w.count(ep.ports.len());
        for (p, r) in &ep.ports {
            w.u8(*p);
            w.u32(r.pkt_count);
            w.u32(r.paused_count);
            w.u64(r.qdepth_sum);
        }
        w.count(ep.meter.len());
        for (ip, op, bytes) in &ep.meter {
            w.u8(*ip);
            w.u8(*op);
            w.u64(*bytes);
        }
    }
    w.count(s.evicted.len());
    for ev in &s.evicted {
        w.flow_key(&ev.key);
        w.flow_record(&ev.record);
        w.u8(ev.epoch_id);
        w.u32(ev.slot as u32);
    }
}

/// Decode a snapshot; rejects trailing garbage.
pub fn decode_snapshot(bytes: &[u8]) -> Result<TelemetrySnapshot, CodecError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let v = r.u8()?;
    if v != WIRE_VERSION {
        return Err(CodecError::Version(v));
    }
    let snap = read_snapshot_body(&mut r)?;
    if r.pos != bytes.len() {
        return Err(CodecError::Truncated {
            need: r.pos,
            have: bytes.len(),
        });
    }
    Ok(snap)
}

/// Counterpart of [`write_snapshot_body`]: one snapshot's fields, leaving
/// the cursor at the first byte after it (batch decoding reads several in
/// sequence; the caller owns the trailing-garbage check).
fn read_snapshot_body(r: &mut Reader) -> Result<TelemetrySnapshot, CodecError> {
    let switch = NodeId(r.u32()?);
    let taken_at = Nanos(r.u64()?);
    let nports = r.u32()? as usize;
    let max_flows = r.u32()? as usize;
    let nepochs = r.count("epochs")?;
    let mut epochs = Vec::with_capacity(nepochs);
    for _ in 0..nepochs {
        let slot = r.u32()? as usize;
        let id = r.u8()?;
        let start = Nanos(r.u64()?);
        let len = Nanos(r.u64()?);
        let nflows = r.count("flows")?;
        let mut flows = Vec::with_capacity(nflows);
        for _ in 0..nflows {
            let k = r.flow_key()?;
            let rec = r.flow_record()?;
            flows.push((k, rec));
        }
        let nport = r.count("ports")?;
        let mut ports = Vec::with_capacity(nport);
        for _ in 0..nport {
            let p = r.u8()?;
            let rec = PortRecord {
                pkt_count: r.u32()?,
                paused_count: r.u32()?,
                qdepth_sum: r.u64()?,
            };
            ports.push((p, rec));
        }
        let nmeter = r.count("meter")?;
        let mut meter = Vec::with_capacity(nmeter);
        for _ in 0..nmeter {
            meter.push((r.u8()?, r.u8()?, r.u64()?));
        }
        epochs.push(EpochSnapshot {
            slot,
            id,
            start,
            len,
            flows,
            ports,
            meter,
        });
    }
    let nev = r.count("evicted")?;
    let mut evicted = Vec::with_capacity(nev);
    for _ in 0..nev {
        let key = r.flow_key()?;
        let record = r.flow_record()?;
        let epoch_id = r.u8()?;
        let slot = r.u32()? as usize;
        evicted.push(EvictedFlow {
            key,
            record,
            epoch_id,
            slot,
        });
    }
    Ok(TelemetrySnapshot {
        switch,
        taken_at,
        nports,
        max_flows,
        epochs,
        evicted,
    })
}

/// Kind byte after the version tag marking a multi-snapshot batch frame —
/// distinct from [`KIND_COMPACTED`] and chosen, like it, so decoding a
/// batch as a single snapshot (or vice versa) fails loudly. Public so the
/// durable evidence log can stamp journal records with the canonical kind
/// of the payload they carry.
pub const KIND_BATCH: u8 = 0xB1;

/// Encode several snapshots as one batch frame: version, kind, count,
/// then the snapshot bodies back to back. One length-prefixed frame (one
/// syscall each way) carries a whole collection interval's worth of
/// epochs — the ingest hot path's framing amortization.
pub fn encode_batch(snaps: &[TelemetrySnapshot]) -> Vec<u8> {
    let mut w = Writer {
        buf: Vec::with_capacity(8 + snaps.len() * 128),
    };
    w.u8(WIRE_VERSION);
    w.u8(KIND_BATCH);
    w.count(snaps.len());
    for s in snaps {
        write_snapshot_body(&mut w, s);
    }
    w.buf
}

/// Decode a batch frame; rejects trailing garbage like
/// [`decode_snapshot`]. An empty batch is valid (and canonical).
pub fn decode_batch(bytes: &[u8]) -> Result<Vec<TelemetrySnapshot>, CodecError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let v = r.u8()?;
    if v != WIRE_VERSION {
        return Err(CodecError::Version(v));
    }
    let kind = r.u8()?;
    if kind != KIND_BATCH {
        return Err(CodecError::Version(kind));
    }
    let n = r.count("batch")?;
    // Every snapshot body is at least its fixed header; size the Vec from
    // the buffer, not the claimed count, so a hostile count cannot force
    // a huge allocation before the truncation check trips.
    let mut out = Vec::with_capacity(n.min(bytes.len() / 8 + 1));
    for _ in 0..n {
        out.push(read_snapshot_body(&mut r)?);
    }
    if r.pos != bytes.len() {
        return Err(CodecError::Truncated {
            need: r.pos,
            have: bytes.len(),
        });
    }
    Ok(out)
}

/// Encode a compacted bucket into the versioned binary layout. The layout
/// shares [`WIRE_VERSION`] with snapshots but leads with a distinct kind
/// byte, so a compacted frame can never be misparsed as a raw snapshot.
pub fn encode_compacted(c: &CompactedEpoch) -> Vec<u8> {
    let mut w = Writer {
        buf: Vec::with_capacity(32 + c.flows.len() * 48),
    };
    w.u8(WIRE_VERSION);
    w.u8(KIND_COMPACTED);
    w.u64(c.from.0);
    w.u64(c.to.0);
    w.u32(c.epochs);
    w.count(c.flows.len());
    for (key, out_port, t) in &c.flows {
        w.flow_key(key);
        w.u8(*out_port);
        w.u64(t.pkt_count);
        w.u64(t.paused_count);
        w.u64(t.qdepth_sum);
        w.u32(t.epochs_active);
    }
    w.count(c.ports.len());
    for (p, t) in &c.ports {
        w.u8(*p);
        w.u64(t.pkt_count);
        w.u64(t.paused_count);
        w.u64(t.qdepth_sum);
    }
    w.count(c.meter.len());
    for (ip, op, bytes) in &c.meter {
        w.u8(*ip);
        w.u8(*op);
        w.u64(*bytes);
    }
    w.buf
}

/// Kind byte after the version tag distinguishing a compacted bucket from
/// a raw snapshot stream (snapshots predate the kind byte; their second
/// byte is the low byte of a switch id, so compacted frames use a value a
/// decode of the wrong type rejects loudly in tests). Public for the same
/// reason as [`KIND_BATCH`].
pub const KIND_COMPACTED: u8 = 0xC0;

/// Decode a compacted bucket; rejects trailing garbage, like
/// [`decode_snapshot`].
pub fn decode_compacted(bytes: &[u8]) -> Result<CompactedEpoch, CodecError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let v = r.u8()?;
    if v != WIRE_VERSION {
        return Err(CodecError::Version(v));
    }
    let kind = r.u8()?;
    if kind != KIND_COMPACTED {
        return Err(CodecError::Version(kind));
    }
    let from = Nanos(r.u64()?);
    let to = Nanos(r.u64()?);
    let epochs = r.u32()?;
    let nflows = r.count("compacted flows")?;
    let mut flows = Vec::with_capacity(nflows);
    for _ in 0..nflows {
        let key = r.flow_key()?;
        let out_port = r.u8()?;
        flows.push((
            key,
            out_port,
            FlowTotals {
                pkt_count: r.u64()?,
                paused_count: r.u64()?,
                qdepth_sum: r.u64()?,
                epochs_active: r.u32()?,
            },
        ));
    }
    let nports = r.count("compacted ports")?;
    let mut ports = Vec::with_capacity(nports);
    for _ in 0..nports {
        let p = r.u8()?;
        ports.push((
            p,
            PortTotals {
                pkt_count: r.u64()?,
                paused_count: r.u64()?,
                qdepth_sum: r.u64()?,
            },
        ));
    }
    let nmeter = r.count("compacted meter")?;
    let mut meter = Vec::with_capacity(nmeter);
    for _ in 0..nmeter {
        meter.push((r.u8()?, r.u8()?, r.u64()?));
    }
    if r.pos != bytes.len() {
        return Err(CodecError::Truncated {
            need: r.pos,
            have: bytes.len(),
        });
    }
    Ok(CompactedEpoch {
        from,
        to,
        epochs,
        flows,
        ports,
        meter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        TelemetrySnapshot {
            switch: NodeId(7),
            taken_at: Nanos(123_456_789),
            nports: 8,
            max_flows: 64,
            epochs: vec![EpochSnapshot {
                slot: 3,
                id: 2,
                start: Nanos(1 << 20),
                len: Nanos(1 << 20),
                flows: vec![(
                    FlowKey::roce(NodeId(1), NodeId(2), 777),
                    FlowRecord {
                        pkt_count: 40,
                        paused_count: 5,
                        qdepth_sum: 321,
                        out_port: 4,
                    },
                )],
                ports: vec![(
                    4,
                    PortRecord {
                        pkt_count: 40,
                        paused_count: 5,
                        qdepth_sum: 321,
                    },
                )],
                meter: vec![(0, 4, 41_920)],
            }],
            evicted: vec![EvictedFlow {
                key: FlowKey::roce(NodeId(3), NodeId(4), 888),
                record: FlowRecord {
                    pkt_count: 2,
                    paused_count: 0,
                    qdepth_sum: 3,
                    out_port: 1,
                },
                epoch_id: 1,
                slot: 9,
            }],
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let s = sample();
        let bytes = encode_snapshot(&s);
        let back = decode_snapshot(&bytes).expect("valid bytes decode");
        assert_eq!(back, s);
        assert_eq!(encode_snapshot(&back), bytes, "encoding is canonical");
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let s = TelemetrySnapshot {
            switch: NodeId(0),
            taken_at: Nanos::ZERO,
            nports: 0,
            max_flows: 0,
            epochs: vec![],
            evicted: vec![],
        };
        assert_eq!(decode_snapshot(&encode_snapshot(&s)).unwrap(), s);
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = encode_snapshot(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode_snapshot(&sample());
        bytes.push(0);
        assert!(decode_snapshot(&bytes).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = encode_snapshot(&sample());
        bytes[0] = 99;
        assert_eq!(decode_snapshot(&bytes), Err(CodecError::Version(99)));
    }

    fn sample_compacted() -> CompactedEpoch {
        let mut c = CompactedEpoch::default();
        for ep in &sample().epochs {
            c.fold(ep);
        }
        c.fold(&sample().epochs[0]);
        c
    }

    #[test]
    fn compacted_roundtrip_is_identity() {
        let c = sample_compacted();
        let bytes = encode_compacted(&c);
        let back = decode_compacted(&bytes).expect("valid bytes decode");
        assert_eq!(back, c);
        assert_eq!(encode_compacted(&back), bytes, "encoding is canonical");
    }

    #[test]
    fn compacted_truncation_detected_at_every_length() {
        let bytes = encode_compacted(&sample_compacted());
        for cut in 0..bytes.len() {
            assert!(
                decode_compacted(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn compacted_trailing_garbage_rejected() {
        let mut bytes = encode_compacted(&sample_compacted());
        bytes.push(0);
        assert!(decode_compacted(&bytes).is_err());
    }

    #[test]
    fn compacted_and_snapshot_frames_do_not_cross_decode() {
        let snap_bytes = encode_snapshot(&sample());
        assert!(decode_compacted(&snap_bytes).is_err());
        let comp_bytes = encode_compacted(&sample_compacted());
        assert!(decode_snapshot(&comp_bytes).is_err());
    }

    #[test]
    fn batch_roundtrip_is_identity() {
        let mut second = sample();
        second.switch = NodeId(9);
        second.taken_at = Nanos(987);
        let batch = vec![sample(), second];
        let bytes = encode_batch(&batch);
        let back = decode_batch(&bytes).expect("valid bytes decode");
        assert_eq!(back, batch);
        assert_eq!(encode_batch(&back), bytes, "encoding is canonical");
    }

    #[test]
    fn empty_batch_roundtrips() {
        let bytes = encode_batch(&[]);
        assert_eq!(decode_batch(&bytes).expect("empty batch decodes"), vec![]);
    }

    #[test]
    fn batch_truncation_detected_at_every_length() {
        let bytes = encode_batch(&[sample(), sample()]);
        for cut in 0..bytes.len() {
            assert!(
                decode_batch(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn batch_trailing_garbage_rejected() {
        let mut bytes = encode_batch(&[sample()]);
        bytes.push(0);
        assert!(decode_batch(&bytes).is_err());
    }

    #[test]
    fn batch_frames_do_not_cross_decode() {
        let batch_bytes = encode_batch(&[sample()]);
        assert!(decode_snapshot(&batch_bytes).is_err());
        assert!(decode_compacted(&batch_bytes).is_err());
        assert!(decode_batch(&encode_snapshot(&sample())).is_err());
        assert!(decode_batch(&encode_compacted(&sample_compacted())).is_err());
    }

    #[test]
    fn batch_absurd_count_rejected_before_allocation() {
        let mut bytes = vec![WIRE_VERSION, 0xB1];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_batch(&bytes),
            Err(CodecError::Oversized { .. })
        ));
    }

    #[test]
    fn batch_count_beyond_buffer_rejected_cheaply() {
        // A plausible count with no bodies behind it must fail truncated,
        // not allocate count-many snapshots.
        let mut bytes = vec![WIRE_VERSION, 0xB1];
        bytes.extend_from_slice(&1000u32.to_le_bytes());
        assert!(matches!(
            decode_batch(&bytes),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn absurd_count_rejected_before_allocation() {
        // version + switch + taken_at + nports + max_flows, then a huge
        // epoch count.
        let mut bytes = vec![WIRE_VERSION];
        bytes.extend_from_slice(&7u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_snapshot(&bytes),
            Err(CodecError::Oversized { .. })
        ));
    }
}
