//! Property tests of the batch frame codec, mirroring the single-snapshot
//! wire properties: encode∘decode identity with canonical re-encoding,
//! rejection of truncation / trailing garbage / count inflation, and no
//! cross-decoding against the other frame kinds.

use hawkeye_sim::{FlowKey, Nanos, NodeId};
use hawkeye_telemetry::{
    decode_batch, decode_compacted, decode_snapshot, encode_batch, encode_snapshot, EpochSnapshot,
    FlowRecord, PortRecord, TelemetrySnapshot,
};
use proptest::prelude::*;

/// (id, start, flows as (src_port, out_port, pkts), ports as (port, pkts)).
type EpochSpec = (u8, u64, Vec<(u16, u8, u32)>, Vec<(u8, u32)>);
/// (switch, taken_at, epochs).
type SnapSpec = (u32, u64, Vec<EpochSpec>);

fn epoch_strategy() -> impl Strategy<Value = EpochSpec> {
    (
        0u8..8,
        0u64..(1 << 24),
        proptest::collection::vec((0u16..64, 0u8..4, 1u32..1000), 0..6),
        proptest::collection::vec((0u8..4, 0u32..1000), 0..4),
    )
}

fn snap_strategy() -> impl Strategy<Value = SnapSpec> {
    (
        0u32..16,
        0u64..(1 << 30),
        proptest::collection::vec(epoch_strategy(), 0..4),
    )
}

fn materialize(spec: SnapSpec) -> TelemetrySnapshot {
    let (sw, taken, epochs) = spec;
    TelemetrySnapshot {
        switch: NodeId(sw),
        taken_at: Nanos(taken),
        nports: 4,
        max_flows: 64,
        epochs: epochs
            .into_iter()
            .enumerate()
            .map(|(slot, (id, start, flows, ports))| EpochSnapshot {
                slot,
                id,
                start: Nanos(start),
                len: Nanos(1 << 20),
                flows: flows
                    .into_iter()
                    .map(|(sp, op, pkts)| {
                        (
                            FlowKey::roce(NodeId(1), NodeId(2), sp),
                            FlowRecord {
                                pkt_count: pkts,
                                paused_count: pkts / 4,
                                qdepth_sum: u64::from(pkts) * 3,
                                out_port: op,
                            },
                        )
                    })
                    .collect(),
                ports: ports
                    .into_iter()
                    .map(|(p, pkts)| {
                        (
                            p,
                            PortRecord {
                                pkt_count: pkts,
                                paused_count: pkts / 8,
                                qdepth_sum: u64::from(pkts),
                            },
                        )
                    })
                    .collect(),
                meter: vec![(0, 1, 2048)],
            })
            .collect(),
        evicted: vec![],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// decode(encode(batch)) == batch and the encoding is canonical, for
    /// any batch size including zero.
    #[test]
    fn batch_roundtrip_identity(
        specs in proptest::collection::vec(snap_strategy(), 0..5),
    ) {
        let batch: Vec<TelemetrySnapshot> = specs.into_iter().map(materialize).collect();
        let bytes = encode_batch(&batch);
        let back = decode_batch(&bytes)
            .map_err(|e| TestCaseError::fail(format!("valid batch rejected: {e}")))?;
        prop_assert_eq!(&back, &batch);
        prop_assert_eq!(encode_batch(&back), bytes);
    }

    /// Every strict prefix of a valid batch frame is rejected — truncation
    /// never yields a partial batch.
    #[test]
    fn batch_truncation_rejected_at_every_cut(
        specs in proptest::collection::vec(snap_strategy(), 1..4),
    ) {
        let batch: Vec<TelemetrySnapshot> = specs.into_iter().map(materialize).collect();
        let bytes = encode_batch(&batch);
        for cut in 0..bytes.len() {
            prop_assert!(
                decode_batch(&bytes[..cut]).is_err(),
                "prefix of {} / {} bytes decoded", cut, bytes.len()
            );
        }
    }

    /// Appending any garbage to a valid frame is rejected.
    #[test]
    fn batch_trailing_garbage_rejected(
        specs in proptest::collection::vec(snap_strategy(), 0..4),
        garbage in proptest::collection::vec(0u8..255, 1..9),
    ) {
        let batch: Vec<TelemetrySnapshot> = specs.into_iter().map(materialize).collect();
        let mut bytes = encode_batch(&batch);
        bytes.extend_from_slice(&garbage);
        prop_assert!(decode_batch(&bytes).is_err());
    }

    /// Inflating the count header past the actual batch size is rejected
    /// (truncated or oversized), never silently misparsed.
    #[test]
    fn batch_count_inflation_rejected(
        specs in proptest::collection::vec(snap_strategy(), 0..4),
        extra in 1u32..1000,
    ) {
        let batch: Vec<TelemetrySnapshot> = specs.into_iter().map(materialize).collect();
        let mut bytes = encode_batch(&batch);
        let count = batch.len() as u32 + extra;
        bytes[2..6].copy_from_slice(&count.to_le_bytes());
        prop_assert!(decode_batch(&bytes).is_err());
    }

    /// Batch frames and the other frame kinds never cross-decode.
    #[test]
    fn batch_never_cross_decodes(spec in snap_strategy()) {
        let snap = materialize(spec);
        let batch_bytes = encode_batch(std::slice::from_ref(&snap));
        prop_assert!(decode_snapshot(&batch_bytes).is_err());
        prop_assert!(decode_compacted(&batch_bytes).is_err());
        prop_assert!(decode_batch(&encode_snapshot(&snap)).is_err());
    }
}
