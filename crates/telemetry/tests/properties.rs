//! Property-based tests of the telemetry layer: count conservation under
//! hash-collision eviction, epoch wrap-around hygiene, and snapshot
//! consistency.

use hawkeye_sim::{EnqueueRecord, FlowId, FlowKey, Nanos, NodeId};
use hawkeye_telemetry::{EpochConfig, SwitchTelemetry, TelemetryConfig};
use proptest::prelude::*;

fn rec(key: FlowKey, out_port: u8, ts: u64) -> EnqueueRecord {
    EnqueueRecord {
        switch: NodeId(0),
        in_port: 0,
        out_port,
        flow: FlowId(0),
        key,
        size: 1048,
        qdepth_pkts: 1,
        qdepth_bytes: 1048,
        egress_paused: false,
        timestamp: Nanos(ts),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Packet counts are conserved across table slots and evictions: the
    /// per-epoch sum of (live + evicted) packet counts equals the number of
    /// enqueues in that epoch.
    #[test]
    fn counts_conserved_under_eviction(
        sports in proptest::collection::vec(0u16..64, 1..200),
        table_bits in 1u32..5,
    ) {
        let cfg = TelemetryConfig {
            epochs: EpochConfig::DEFAULT,
            max_flows: 1 << table_bits,
            query_lookback: 2,
        };
        let mut t = SwitchTelemetry::new(NodeId(0), 4, cfg);
        // All enqueues in epoch 0.
        for (i, sp) in sports.iter().enumerate() {
            let key = FlowKey::roce(NodeId(1), NodeId(2), *sp);
            t.on_enqueue(&rec(key, 1, 100 + i as u64));
        }
        let snap = t.snapshot(Nanos(100_000));
        let live: u64 = snap.epochs.iter()
            .flat_map(|e| e.flows.iter())
            .map(|(_, r)| r.pkt_count as u64)
            .sum();
        let evicted: u64 = snap.evicted.iter().map(|e| e.record.pkt_count as u64).sum();
        prop_assert_eq!(live + evicted, sports.len() as u64);
        // The port table agrees.
        let port: u64 = snap.epochs.iter()
            .flat_map(|e| e.ports.iter())
            .map(|(_, r)| r.pkt_count as u64)
            .sum();
        prop_assert_eq!(port, sports.len() as u64);
    }

    /// Wrap-around: a slot reused by a newer epoch never mixes in stale
    /// counts, no matter the timestamp pattern.
    #[test]
    fn wraparound_never_mixes_epochs(
        offsets in proptest::collection::vec(0u64..(1u64 << 22), 1..100),
        rounds in 1u64..4,
    ) {
        let ec = EpochConfig::DEFAULT;
        let cfg = TelemetryConfig { epochs: ec, max_flows: 64, query_lookback: 2 };
        let mut t = SwitchTelemetry::new(NodeId(0), 4, cfg);
        let key = FlowKey::roce(NodeId(1), NodeId(2), 9);
        let span = ec.ring_span().as_nanos();
        let mut sorted = offsets.clone();
        sorted.sort_unstable();
        let mut last = 0;
        for r in 0..rounds {
            for &o in &sorted {
                let ts = r * span + o;
                if ts < last { continue; }
                last = ts;
                t.on_enqueue(&rec(key, 1, ts));
            }
        }
        // Snapshot at the final time: every epoch's packet count must be
        // <= the number of enqueues that could fall into that exact epoch.
        let snap = t.snapshot(Nanos(last));
        for e in &snap.epochs {
            for (_, fr) in &e.flows {
                prop_assert!(fr.pkt_count as usize <= sorted.len());
            }
            // Epoch identity is self-consistent.
            prop_assert_eq!(ec.slot(e.start), e.slot);
            prop_assert_eq!(ec.epoch_id(e.start), e.id);
            prop_assert!(e.start <= Nanos(last));
        }
    }

    /// Snapshot wire sizes: filtered <= full, and filtered grows with
    /// occupancy.
    #[test]
    fn snapshot_size_sanity(n in 1usize..60) {
        let cfg = TelemetryConfig { epochs: EpochConfig::DEFAULT, max_flows: 256, query_lookback: 2 };
        let mut t = SwitchTelemetry::new(NodeId(0), 8, cfg);
        for i in 0..n {
            let key = FlowKey::roce(NodeId(1), NodeId(2), i as u16);
            t.on_enqueue(&rec(key, (i % 8) as u8, 50 + i as u64));
        }
        let snap = t.snapshot(Nanos(1000));
        prop_assert!(snap.wire_size_filtered() <= snap.wire_size_full());
        prop_assert!(snap.distinct_flows() <= n);
        prop_assert!(snap.report_packets(1500) >= 1);
    }
}
