//! # hawkeye-tofino
//!
//! Models of the hardware-facing parts of the paper's evaluation (§4.5):
//! the Tofino ASIC resource usage of the Hawkeye P4 program (Fig. 13) and
//! the switch-CPU telemetry poller with zero-filtering and MTU batching
//! (Fig. 14). No Tofino is available in this environment, so both are
//! explicit arithmetic models over the `hawkeye-telemetry` register layout
//! and Tofino 1's published budgets — every constant is documented at its
//! definition so the models are auditable.

pub mod poller;
pub mod resources;

pub use poller::{
    poll, poll_analytic, poll_time_ms, PollerReport, MTU_EXPORT_BYTES, PHV_EXPORT_BYTES,
};
pub use resources::{
    memory_sweep, memory_usage, resource_usage, MemoryUsage, ResourceUsage, SwitchDims,
    FLOW_SLOT_BYTES, METER_CELL_BYTES, PORT_SLOT_BYTES, SALU_PER_STAGE, SRAM_BLOCKS_PER_STAGE,
    SRAM_BLOCK_BYTES, STAGES, STATUS_BYTES, TCAM_BLOCKS_PER_STAGE,
};
