//! Switch-CPU telemetry poller model (§4.5, Fig. 14).
//!
//! The CPU (via BF_Runtime's DMA register sync) reads the full telemetry
//! arrays, filters zero-valued slots, and batches the survivors into
//! MTU-sized report packets. The alternative — dumping registers with
//! data-plane packet generation — must ship every slot and can carry only
//! ~200 usable bytes per packet (the PHV limit), so the poller wins on both
//! bytes (Fig. 14a, >80% reduction) and packet count (Fig. 14b, ~95%
//! reduction).

use hawkeye_telemetry::{TelemetrySnapshot, FLOW_ENTRY_BYTES, PORT_ENTRY_BYTES};
use serde::{Deserialize, Serialize};

/// Usable payload when exporting telemetry by generating packets in the
/// data plane (bounded by the ~200 B of PHV a recirculated packet can
/// carry, §3.4).
pub const PHV_EXPORT_BYTES: usize = 200;
/// Usable payload of a CPU-batched report packet (MTU minus headers).
pub const MTU_EXPORT_BYTES: usize = 1500;

/// Time for the CPU to poll one switch's full telemetry (measured in the
/// paper: ~80 ms for 2 epochs, ~120 ms for 4, each epoch holding 64 ports
/// and 4096 flows). Modeled as affine in the epoch count.
pub fn poll_time_ms(epochs: usize) -> f64 {
    40.0 + 20.0 * epochs as f64
}

/// Poller outcome for one switch collection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PollerReport {
    /// Bytes a full data-plane dump would ship.
    pub full_bytes: usize,
    /// Bytes after CPU zero-filtering.
    pub filtered_bytes: usize,
    /// Packets for a data-plane dump at PHV-limited payload.
    pub dataplane_packets: usize,
    /// Packets for CPU MTU batching of the filtered bytes.
    pub cpu_packets: usize,
}

impl PollerReport {
    /// Fig. 14a: telemetry size reduction by zero-filtering.
    pub fn size_reduction(&self) -> f64 {
        if self.full_bytes == 0 {
            0.0
        } else {
            1.0 - self.filtered_bytes as f64 / self.full_bytes as f64
        }
    }

    /// Fig. 14b: report packet count reduction by MTU batching.
    pub fn packet_reduction(&self) -> f64 {
        if self.dataplane_packets == 0 {
            0.0
        } else {
            1.0 - self.cpu_packets as f64 / self.dataplane_packets as f64
        }
    }
}

/// Model the poller on a real collected snapshot.
pub fn poll(snapshot: &TelemetrySnapshot) -> PollerReport {
    let full = snapshot.wire_size_full();
    let filtered = snapshot.wire_size_filtered();
    PollerReport {
        full_bytes: full,
        filtered_bytes: filtered,
        dataplane_packets: full.div_ceil(PHV_EXPORT_BYTES).max(1),
        cpu_packets: filtered.div_ceil(MTU_EXPORT_BYTES).max(1),
    }
}

/// Model the poller analytically from table occupancy: `concurrent_flows`
/// occupied slots of `max_flows`, over `epochs` epochs of a `ports`-port
/// switch (used for the Fig. 14 sweep without running a simulation).
pub fn poll_analytic(
    epochs: usize,
    max_flows: usize,
    concurrent_flows: usize,
    ports: usize,
    active_ports: usize,
) -> PollerReport {
    let full = epochs * (max_flows * FLOW_ENTRY_BYTES + ports * PORT_ENTRY_BYTES);
    let filtered = epochs * (concurrent_flows * FLOW_ENTRY_BYTES + active_ports * PORT_ENTRY_BYTES);
    PollerReport {
        full_bytes: full,
        filtered_bytes: filtered,
        dataplane_packets: full.div_ceil(PHV_EXPORT_BYTES).max(1),
        cpu_packets: filtered.div_ceil(MTU_EXPORT_BYTES).max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_poll_times() {
        assert_eq!(poll_time_ms(2), 80.0);
        assert_eq!(poll_time_ms(4), 120.0);
    }

    #[test]
    fn reductions_match_the_paper_at_typical_occupancy() {
        // "in most cases, the concurrent flow count in one epoch is much
        // smaller than the maximum": e.g. 300 of 4096 slots.
        let r = poll_analytic(4, 4096, 300, 64, 16);
        assert!(
            r.size_reduction() > 0.8,
            "Fig 14a: {:.2}",
            r.size_reduction()
        );
        assert!(
            r.packet_reduction() > 0.9,
            "Fig 14b: {:.2}",
            r.packet_reduction()
        );
    }

    #[test]
    fn full_table_gives_no_size_reduction() {
        let r = poll_analytic(2, 1024, 1024, 64, 64);
        assert!(r.size_reduction() < 0.01);
        // Packet batching still wins (1500 B vs 200 B payloads).
        assert!(r.packet_reduction() > 0.8);
    }

    #[test]
    fn reductions_monotone_in_occupancy() {
        let lo = poll_analytic(4, 4096, 64, 64, 8);
        let hi = poll_analytic(4, 4096, 2048, 64, 64);
        assert!(lo.size_reduction() > hi.size_reduction());
        assert!(lo.filtered_bytes < hi.filtered_bytes);
    }
}
