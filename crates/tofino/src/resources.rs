//! Tofino hardware resource model (Fig. 13).
//!
//! Fig. 13a reports the prototype's ASIC resource usage; Fig. 13b shows how
//! telemetry memory scales with the epoch count and per-epoch flow
//! capacity. Both are arithmetic over the register layout of
//! `hawkeye-telemetry` plus the published characteristics of Tofino 1
//! (12 stages/pipe, 120 SRAM blocks of 16 KB per stage, 48 TCAM blocks per
//! stage, ~768 B PHV per packet); the constants are documented here so the
//! model is auditable.

use hawkeye_telemetry::{EpochConfig, TelemetryConfig};
use serde::{Deserialize, Serialize};

/// Tofino 1 per-pipeline budgets.
pub const STAGES: usize = 12;
pub const SRAM_BLOCKS_PER_STAGE: usize = 120;
pub const SRAM_BLOCK_BYTES: usize = 16 * 1024;
pub const TCAM_BLOCKS_PER_STAGE: usize = 48;
pub const PHV_BYTES: usize = 768;
pub const SALU_PER_STAGE: usize = 4;

/// Bytes per flow-table slot in switch SRAM: 13 B 5-tuple key + packet
/// count (4) + paused count (4) + queue-depth accumulator (4) + out port
/// (1), padded to the 32-bit register lanes Tofino exposes.
pub const FLOW_SLOT_BYTES: usize = 28;
/// Port-level telemetry per port per epoch: packets, paused, qdepth (3 x
/// 32-bit registers).
pub const PORT_SLOT_BYTES: usize = 12;
/// Causality meter cell: one 32-bit byte counter per (ingress, egress).
pub const METER_CELL_BYTES: usize = 4;
/// PFC status register per port: pause deadline (48-bit ts) + flags.
pub const STATUS_BYTES: usize = 8;

/// The switch dimensions the memory model is evaluated at.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SwitchDims {
    pub ports: usize,
}

impl Default for SwitchDims {
    fn default() -> Self {
        SwitchDims { ports: 64 }
    }
}

/// Memory usage breakdown (bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryUsage {
    pub flow_telemetry: usize,
    pub port_telemetry: usize,
    pub causality_meter: usize,
    pub pfc_status: usize,
}

impl MemoryUsage {
    pub fn total(&self) -> usize {
        self.flow_telemetry + self.port_telemetry + self.causality_meter + self.pfc_status
    }

    /// Constant-size portion (bounded by the port count — §4.5 "the memory
    /// usage of PFC causality structure and port-level telemetry is small
    /// and constant").
    pub fn constant_part(&self) -> usize {
        self.port_telemetry + self.causality_meter + self.pfc_status
    }
}

/// Memory required by a telemetry configuration on a switch with `dims`.
pub fn memory_usage(cfg: &TelemetryConfig, dims: SwitchDims) -> MemoryUsage {
    let epochs = cfg.epochs.epoch_count();
    MemoryUsage {
        flow_telemetry: epochs * cfg.max_flows * FLOW_SLOT_BYTES,
        port_telemetry: epochs * dims.ports * PORT_SLOT_BYTES,
        causality_meter: epochs * dims.ports * dims.ports * METER_CELL_BYTES,
        pfc_status: dims.ports * STATUS_BYTES,
    }
}

/// Percent-of-ASIC usage summary (Fig. 13a).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ResourceUsage {
    pub sram_pct: f64,
    pub tcam_pct: f64,
    pub phv_pct: f64,
    pub stages_used: usize,
    pub salu_pct: f64,
}

/// Model the prototype's ASIC usage for a telemetry configuration.
///
/// SRAM is the memory model above; the remaining numbers reflect the P4
/// program structure: the polling-forwarding logic and per-packet telemetry
/// updates occupy ~6 of 12 stages; the polling header, 5-tuple, epoch
/// index, and mirror metadata add ~56 bytes of PHV; match tables for flag
/// dispatch and port mapping take a few TCAM blocks; each register update
/// (flow x4, port x3, meter, status) consumes a stateful ALU.
pub fn resource_usage(cfg: &TelemetryConfig, dims: SwitchDims) -> ResourceUsage {
    let mem = memory_usage(cfg, dims);
    let sram_budget = STAGES * SRAM_BLOCKS_PER_STAGE * SRAM_BLOCK_BYTES;
    let sram_pct = 100.0 * mem.total() as f64 / sram_budget as f64;
    let stages_used = 6;
    let salu_used = 9; // 4 flow + 3 port + 1 meter + 1 status
    ResourceUsage {
        sram_pct,
        tcam_pct: 100.0 * 4.0 / (STAGES * TCAM_BLOCKS_PER_STAGE) as f64,
        phv_pct: 100.0 * 56.0 / PHV_BYTES as f64,
        stages_used,
        salu_pct: 100.0 * salu_used as f64 / (STAGES * SALU_PER_STAGE) as f64,
    }
}

/// The Fig. 13b sweep: memory vs epoch count and max flows per epoch.
pub fn memory_sweep(dims: SwitchDims) -> Vec<(usize, usize, MemoryUsage)> {
    let mut rows = Vec::new();
    for index_bits in [1u32, 2, 3] {
        for max_flows in [1024usize, 2048, 4096, 8192] {
            let cfg = TelemetryConfig {
                epochs: EpochConfig {
                    shift: 20,
                    index_bits,
                },
                max_flows,
                ..Default::default()
            };
            rows.push((1 << index_bits, max_flows, memory_usage(&cfg, dims)));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(bits: u32, flows: usize) -> TelemetryConfig {
        TelemetryConfig {
            epochs: EpochConfig {
                shift: 20,
                index_bits: bits,
            },
            max_flows: flows,
            ..Default::default()
        }
    }

    #[test]
    fn paper_testbed_configuration_fits_tofino() {
        // 4 epochs x 4096 flows, 64 ports (§4.5).
        let u = resource_usage(&cfg(2, 4096), SwitchDims::default());
        assert!(u.sram_pct < 15.0, "SRAM {:.1}% must fit easily", u.sram_pct);
        assert!(u.phv_pct < 10.0);
        assert!(u.stages_used <= STAGES);
        assert!(u.salu_pct < 25.0);
    }

    #[test]
    fn flow_memory_scales_linearly_with_flows() {
        let d = SwitchDims::default();
        let m1 = memory_usage(&cfg(2, 1024), d);
        let m4 = memory_usage(&cfg(2, 4096), d);
        assert_eq!(m4.flow_telemetry, 4 * m1.flow_telemetry);
        // Constant parts identical (bounded by port count).
        assert_eq!(m1.constant_part(), m4.constant_part());
    }

    #[test]
    fn constant_part_is_port_bounded_and_small() {
        let d = SwitchDims::default();
        let m = memory_usage(&cfg(2, 4096), d);
        // Meter: 4 epochs * 64*64 * 4B = 64 KiB; port telemetry 3 KiB;
        // status 512 B.
        assert_eq!(m.causality_meter, 4 * 64 * 64 * 4);
        assert_eq!(m.port_telemetry, 4 * 64 * 12);
        assert_eq!(m.pfc_status, 64 * 8);
        assert!(m.constant_part() < 128 * 1024);
        // Flow telemetry dominates (O(#flow), §4.5).
        assert!(m.flow_telemetry > m.constant_part());
    }

    #[test]
    fn memory_sweep_covers_grid() {
        let rows = memory_sweep(SwitchDims::default());
        assert_eq!(rows.len(), 12);
        // More epochs, more memory.
        let m2 = rows.iter().find(|(e, f, _)| *e == 2 && *f == 4096).unwrap();
        let m8 = rows.iter().find(|(e, f, _)| *e == 8 && *f == 4096).unwrap();
        assert!(m8.2.total() > m2.2.total() * 3);
    }
}
