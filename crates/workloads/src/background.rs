//! Background workload generation: Poisson arrivals of empirically-sized
//! flows between random host pairs, scaled to a target link load (§4.1).

use crate::flowsize::FlowSizeDist;
use hawkeye_sim::{FlowKey, Nanos, NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One flow to install into a simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    pub key: FlowKey,
    pub size_bytes: u64,
    pub start: Nanos,
    /// Application-level rate cap (bits/s), if any.
    pub max_rate_bps: Option<f64>,
    /// Whether the sender reacts to CNPs (background traffic always does;
    /// some anomaly culprits are deliberately non-compliant).
    pub cc_enabled: bool,
}

/// Background traffic parameters.
#[derive(Debug, Clone, Copy)]
pub struct BackgroundConfig {
    /// Average fraction of per-host access bandwidth consumed (0.0..1.0).
    pub load: f64,
    /// Host access bandwidth (bits/s).
    pub host_bw_bps: f64,
    /// Trace duration.
    pub duration: Nanos,
    /// Cap on a single background flow's size (bytes); the empirical tail
    /// reaches 300 MB, far longer than a trace — capping keeps per-trace
    /// load near its expectation without changing the in-trace mix.
    pub max_flow_bytes: u64,
    /// UDP source ports are drawn from this base upward (so scenario flows
    /// can use a disjoint range).
    pub src_port_base: u16,
}

impl Default for BackgroundConfig {
    fn default() -> Self {
        BackgroundConfig {
            load: 0.3,
            host_bw_bps: 100e9,
            duration: Nanos::from_millis(3),
            max_flow_bytes: 10_000_000,
            src_port_base: 10_000,
        }
    }
}

/// Generate background flows across random distinct host pairs.
///
/// The Poisson arrival rate is chosen so offered load equals
/// `cfg.load * host_bw * #hosts` given the (capped) mean flow size.
pub fn generate(topo: &Topology, cfg: &BackgroundConfig, seed: u64) -> Vec<FlowSpec> {
    let hosts: Vec<NodeId> = topo.hosts().collect();
    assert!(hosts.len() >= 2);
    let dist = FlowSizeDist::empirical();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB06D_CAFE);

    // Estimate the capped mean empirically from the same distribution (the
    // analytic mean is for the uncapped tail).
    let mut est = StdRng::seed_from_u64(seed ^ 0x51AB);
    let mean_bytes: f64 = (0..4096)
        .map(|_| dist.sample(&mut est).min(cfg.max_flow_bytes) as f64)
        .sum::<f64>()
        / 4096.0;

    let offered_bps = cfg.load * cfg.host_bw_bps * hosts.len() as f64;
    let flows_per_ns = offered_bps / (mean_bytes * 8.0) / 1e9;

    let mut out = Vec::new();
    let mut t = 0.0f64;
    let mut sp = cfg.src_port_base;
    loop {
        // Exponential inter-arrival.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / flows_per_ns;
        if t >= cfg.duration.as_nanos() as f64 {
            break;
        }
        let src = hosts[rng.gen_range(0..hosts.len())];
        let mut dst = hosts[rng.gen_range(0..hosts.len())];
        while dst == src {
            dst = hosts[rng.gen_range(0..hosts.len())];
        }
        out.push(FlowSpec {
            key: FlowKey::roce(src, dst, sp),
            size_bytes: dist.sample(&mut rng).min(cfg.max_flow_bytes),
            start: Nanos(t as u64),
            max_rate_bps: None,
            cc_enabled: true,
        });
        sp = sp.wrapping_add(1).max(cfg.src_port_base);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_sim::{fat_tree, EVAL_BANDWIDTH, EVAL_DELAY};

    fn topo() -> Topology {
        fat_tree(4, EVAL_BANDWIDTH, EVAL_DELAY)
    }

    #[test]
    fn offered_load_tracks_target() {
        let t = topo();
        let cfg = BackgroundConfig {
            load: 0.4,
            duration: Nanos::from_millis(20),
            ..Default::default()
        };
        let flows = generate(&t, &cfg, 3);
        let bytes: u64 = flows.iter().map(|f| f.size_bytes).sum();
        let offered = bytes as f64 * 8.0 / cfg.duration.as_secs_f64();
        let target = 0.4 * 100e9 * 16.0;
        assert!(
            (offered - target).abs() / target < 0.35,
            "offered {offered:.3e} vs target {target:.3e}"
        );
    }

    #[test]
    fn arrivals_are_in_window_and_sorted_pairs_valid() {
        let t = topo();
        let cfg = BackgroundConfig::default();
        let flows = generate(&t, &cfg, 9);
        assert!(!flows.is_empty());
        for f in &flows {
            assert!(f.start < cfg.duration);
            assert_ne!(f.key.src, f.key.dst);
            assert!(t.is_host(f.key.src) && t.is_host(f.key.dst));
            assert!(f.size_bytes <= cfg.max_flow_bytes);
            assert!(f.key.src_port >= cfg.src_port_base);
        }
    }

    #[test]
    fn seeds_give_distinct_but_reproducible_traces() {
        let t = topo();
        let cfg = BackgroundConfig::default();
        let a = generate(&t, &cfg, 1);
        let b = generate(&t, &cfg, 1);
        let c = generate(&t, &cfg, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn higher_load_means_more_flows() {
        let t = topo();
        let lo = generate(
            &t,
            &BackgroundConfig {
                load: 0.1,
                ..Default::default()
            },
            5,
        );
        let hi = generate(
            &t,
            &BackgroundConfig {
                load: 0.7,
                ..Default::default()
            },
            5,
        );
        assert!(hi.len() > lo.len() * 3);
    }
}
