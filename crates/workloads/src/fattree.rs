//! Structured navigation of the Clos-family topologies built by
//! `hawkeye_sim::clos` / `fat_tree` / `leaf_spine`: which node is which
//! role, and which port connects what — needed by scenario builders that
//! install deliberate routing misconfigurations.
//!
//! Reconstruction goes through a single name → `NodeId` map built in one
//! pass over the node table, so a K=16 tree (1344 nodes) costs O(n)
//! instead of the old O(n²) per-name scan. All lookups return typed
//! [`NavError`]s; the panicking [`FatTreeNav::new`]/[`FatTreeNav::port_to`]
//! wrappers are kept for existing call sites.

use hawkeye_sim::{ClosConfig, NodeId, PortId, Topology};
use std::collections::HashMap;
use std::fmt;

/// Why a topology could not be navigated as a Clos/fat-tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NavError {
    /// A node the naming scheme requires is absent — the topology was not
    /// produced by the expected builder (or is a degenerate mutation).
    MissingNode { name: String },
    /// Two nodes expected to share a link are not adjacent.
    NotAdjacent { from: String, to: String },
    /// A role index the scenario needs does not exist at these dimensions.
    RoleOutOfRange {
        role: &'static str,
        index: usize,
        len: usize,
    },
}

impl fmt::Display for NavError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NavError::MissingNode { name } => write!(f, "node {name} not found"),
            NavError::NotAdjacent { from, to } => {
                write!(f, "{from} has no link to {to}")
            }
            NavError::RoleOutOfRange { role, index, len } => {
                write!(f, "role {role}[{index}] out of range (len {len})")
            }
        }
    }
}

impl std::error::Error for NavError {}

/// Role-indexed view of a Clos-family topology.
///
/// For three-tier fabrics (`clos` / `fat_tree`) every field is populated.
/// For two-tier leaf-spine fabrics, leaves are grouped into logical pods of
/// two edges each, `aggs[pod]` holds the (shared) spines for every pod, and
/// `cores` is empty — scenario builders that pin traffic through the core
/// tier fall back to pinning at the spine directly.
#[derive(Debug, Clone)]
pub struct FatTreeNav {
    /// Fat-tree parameter for `fat_tree(k)` topologies; for other family
    /// members, the number of logical pods.
    pub k: usize,
    /// `hosts[pod][edge][i]`
    pub hosts: Vec<Vec<Vec<NodeId>>>,
    /// `edges[pod][i]`
    pub edges: Vec<Vec<NodeId>>,
    /// `aggs[pod][i]` (for leaf-spine: the spines, shared across pods)
    pub aggs: Vec<Vec<NodeId>>,
    /// `cores[i]` (agg index `a` connects cores
    /// `a*cores_per_group .. (a+1)*cores_per_group`); empty for two-tier
    pub cores: Vec<NodeId>,
    /// Cores per aggregation index group; 0 for two-tier fabrics.
    pub cores_per_group: usize,
}

/// One-pass name → id index over a topology's node table.
fn name_index(topo: &Topology) -> HashMap<&str, NodeId> {
    (0..topo.node_count() as u32)
        .map(NodeId)
        .map(|n| (topo.name(n), n))
        .collect()
}

impl FatTreeNav {
    /// Reconstruct roles from the builder's naming scheme; panics if `topo`
    /// was not produced by `fat_tree(k, ..)`. Prefer [`FatTreeNav::try_new`]
    /// where a degenerate topology is survivable.
    pub fn new(topo: &Topology, k: usize) -> Self {
        Self::try_new(topo, k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Reconstruct roles from the `fat_tree(k, ..)` naming scheme.
    pub fn try_new(topo: &Topology, k: usize) -> Result<Self, NavError> {
        let half = k / 2;
        Self::try_clos_dims(topo, k, half, half, half, half)
    }

    /// Reconstruct roles from a generalized `clos(cfg)` topology.
    pub fn try_clos(topo: &Topology, cfg: &ClosConfig) -> Result<Self, NavError> {
        Self::try_clos_dims(
            topo,
            cfg.pods,
            cfg.edges_per_pod,
            cfg.aggs_per_pod,
            cfg.hosts_per_edge,
            cfg.cores_per_group,
        )
    }

    fn try_clos_dims(
        topo: &Topology,
        pods: usize,
        epp: usize,
        app: usize,
        hpe: usize,
        cpg: usize,
    ) -> Result<Self, NavError> {
        let index = name_index(topo);
        let find = |name: String| -> Result<NodeId, NavError> {
            index
                .get(name.as_str())
                .copied()
                .ok_or(NavError::MissingNode { name })
        };
        let mut hosts = vec![vec![Vec::new(); epp]; pods];
        for (pod, pod_hosts) in hosts.iter_mut().enumerate() {
            for (e, edge_hosts) in pod_hosts.iter_mut().enumerate() {
                for h in 0..hpe {
                    edge_hosts.push(find(format!("h{}", pod * epp * hpe + e * hpe + h))?);
                }
            }
        }
        let mut edges = Vec::with_capacity(pods);
        let mut aggs = Vec::with_capacity(pods);
        for p in 0..pods {
            edges.push(
                (0..epp)
                    .map(|e| find(format!("edge{p}_{e}")))
                    .collect::<Result<Vec<_>, _>>()?,
            );
            aggs.push(
                (0..app)
                    .map(|a| find(format!("agg{p}_{a}")))
                    .collect::<Result<Vec<_>, _>>()?,
            );
        }
        let cores = (0..app * cpg)
            .map(|c| find(format!("core{c}")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FatTreeNav {
            k: pods,
            hosts,
            edges,
            aggs,
            cores,
            cores_per_group: cpg,
        })
    }

    /// Reconstruct roles from a `leaf_spine(leaves, spines, hosts_per_leaf)`
    /// topology: consecutive leaf pairs form logical pods, spines play the
    /// aggregation role in every pod, and the core tier is empty.
    pub fn try_leaf_spine(
        topo: &Topology,
        leaves: usize,
        spines: usize,
        hosts_per_leaf: usize,
    ) -> Result<Self, NavError> {
        if !leaves.is_multiple_of(2) || leaves == 0 {
            return Err(NavError::RoleOutOfRange {
                role: "leaf-pods",
                index: leaves,
                len: leaves / 2,
            });
        }
        let index = name_index(topo);
        let find = |name: String| -> Result<NodeId, NavError> {
            index
                .get(name.as_str())
                .copied()
                .ok_or(NavError::MissingNode { name })
        };
        let pods = leaves / 2;
        let spine_ids = (0..spines)
            .map(|s| find(format!("spine{s}")))
            .collect::<Result<Vec<_>, _>>()?;
        let mut hosts = vec![vec![Vec::new(); 2]; pods];
        let mut edges = Vec::with_capacity(pods);
        for (pod, pod_hosts) in hosts.iter_mut().enumerate() {
            let mut pod_edges = Vec::with_capacity(2);
            for (e, edge_hosts) in pod_hosts.iter_mut().enumerate() {
                let leaf = pod * 2 + e;
                pod_edges.push(find(format!("leaf{leaf}"))?);
                for h in 0..hosts_per_leaf {
                    edge_hosts.push(find(format!("h{}", leaf * hosts_per_leaf + h))?);
                }
            }
            edges.push(pod_edges);
        }
        let aggs = vec![spine_ids; pods];
        Ok(FatTreeNav {
            k: pods,
            hosts,
            edges,
            aggs,
            cores: Vec::new(),
            cores_per_group: 0,
        })
    }

    /// Whether the fabric has a core tier (three-tier Clos vs leaf-spine).
    pub fn is_three_tier(&self) -> bool {
        !self.cores.is_empty()
    }

    /// Navigation dimensions: (pods, edges_per_pod, aggs_per_pod,
    /// hosts_per_edge).
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (
            self.hosts.len(),
            self.edges.first().map_or(0, |e| e.len()),
            self.aggs.first().map_or(0, |a| a.len()),
            self.hosts
                .first()
                .and_then(|p| p.first())
                .map_or(0, |e| e.len()),
        )
    }

    /// The port on `from` whose link leads to `to`; panics if not adjacent.
    /// Prefer [`FatTreeNav::try_port_to`] where a missing link is
    /// survivable (e.g. link-failure topology variants).
    pub fn port_to(&self, topo: &Topology, from: NodeId, to: NodeId) -> u8 {
        self.try_port_to(topo, from, to)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The port on `from` whose link leads to `to`.
    pub fn try_port_to(&self, topo: &Topology, from: NodeId, to: NodeId) -> Result<u8, NavError> {
        (0..topo.ports(from).len() as u8)
            .find(|&p| topo.peer(PortId::new(from, p)).node == to)
            .ok_or_else(|| NavError::NotAdjacent {
                from: topo.name(from).to_string(),
                to: topo.name(to).to_string(),
            })
    }

    /// Egress PortId on `from` toward `to`.
    pub fn egress(&self, topo: &Topology, from: NodeId, to: NodeId) -> PortId {
        PortId::new(from, self.port_to(topo, from, to))
    }

    /// Pin traffic for `dst` entering the fabric at `edge` so it descends
    /// into the destination pod via aggregation index `agg_idx` — the
    /// route-override pattern deadlock scenarios use to steer remote flows
    /// into a cyclic buffer dependency.
    ///
    /// Three-tier: overrides `edge → aggs[via_pod][agg_idx]` and
    /// `aggs[via_pod][agg_idx] → cores[agg_idx*cores_per_group + core_slot]`;
    /// the core then descends to the destination pod's agg `agg_idx` by
    /// normal routing. Two-tier: overrides `edge → spine[agg_idx]` directly
    /// (the spine IS the shared aggregation layer, no core hop exists).
    pub fn pin_ingress_via_agg(
        &self,
        topo: &mut Topology,
        edge: NodeId,
        dst: NodeId,
        via_pod: usize,
        agg_idx: usize,
        core_slot: usize,
    ) -> Result<(), NavError> {
        let pod_aggs = self.aggs.get(via_pod).ok_or(NavError::RoleOutOfRange {
            role: "pod",
            index: via_pod,
            len: self.aggs.len(),
        })?;
        let agg = *pod_aggs.get(agg_idx).ok_or(NavError::RoleOutOfRange {
            role: "agg",
            index: agg_idx,
            len: pod_aggs.len(),
        })?;
        let p = self.try_port_to(topo, edge, agg)?;
        topo.add_route_override(edge, dst, p);
        if self.is_three_tier() {
            let core_idx = agg_idx * self.cores_per_group + core_slot;
            let core = *self.cores.get(core_idx).ok_or(NavError::RoleOutOfRange {
                role: "core",
                index: core_idx,
                len: self.cores.len(),
            })?;
            let p = self.try_port_to(topo, agg, core)?;
            topo.add_route_override(agg, dst, p);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_sim::{clos, fat_tree, leaf_spine, EVAL_BANDWIDTH, EVAL_DELAY};

    #[test]
    fn roles_cover_the_k4_tree() {
        let topo = fat_tree(4, EVAL_BANDWIDTH, EVAL_DELAY);
        let nav = FatTreeNav::new(&topo, 4);
        assert_eq!(nav.cores.len(), 4);
        assert_eq!(nav.edges.iter().flatten().count(), 8);
        assert_eq!(nav.aggs.iter().flatten().count(), 8);
        assert_eq!(nav.hosts.iter().flatten().flatten().count(), 16);
        // Host h0 attaches to edge0_0.
        let h0 = nav.hosts[0][0][0];
        assert_eq!(topo.peer(PortId::new(h0, 0)).node, nav.edges[0][0]);
    }

    #[test]
    fn port_to_finds_adjacency() {
        let topo = fat_tree(4, EVAL_BANDWIDTH, EVAL_DELAY);
        let nav = FatTreeNav::new(&topo, 4);
        let e = nav.edges[0][0];
        let a = nav.aggs[0][1];
        let p = nav.port_to(&topo, e, a);
        assert_eq!(topo.peer(PortId::new(e, p)).node, a);
        // Agg0_0 connects cores 0 and 1.
        let a0 = nav.aggs[0][0];
        nav.port_to(&topo, a0, nav.cores[0]);
        nav.port_to(&topo, a0, nav.cores[1]);
        // Agg0_1 connects cores 2 and 3.
        let a1 = nav.aggs[0][1];
        nav.port_to(&topo, a1, nav.cores[2]);
        nav.port_to(&topo, a1, nav.cores[3]);
    }

    #[test]
    #[should_panic(expected = "no link")]
    fn port_to_panics_for_non_adjacent() {
        let topo = fat_tree(4, EVAL_BANDWIDTH, EVAL_DELAY);
        let nav = FatTreeNav::new(&topo, 4);
        // edge0_0 and core0 are not directly linked.
        nav.port_to(&topo, nav.edges[0][0], nav.cores[0]);
    }

    #[test]
    fn try_new_rejects_non_fat_tree() {
        let topo = hawkeye_sim::dumbbell(2, 2, EVAL_BANDWIDTH, EVAL_DELAY);
        let err = FatTreeNav::try_new(&topo, 4).unwrap_err();
        assert!(matches!(err, NavError::MissingNode { .. }), "{err}");
    }

    #[test]
    fn try_port_to_reports_missing_links_typed() {
        let topo = fat_tree(4, EVAL_BANDWIDTH, EVAL_DELAY);
        let nav = FatTreeNav::new(&topo, 4);
        let err = nav
            .try_port_to(&topo, nav.edges[0][0], nav.cores[0])
            .unwrap_err();
        assert!(matches!(err, NavError::NotAdjacent { .. }), "{err}");
    }

    #[test]
    fn clos_nav_covers_generalized_dims() {
        let mut cfg = ClosConfig::fat_tree(4, EVAL_BANDWIDTH, EVAL_DELAY);
        cfg.hosts_per_edge = 3;
        let topo = clos(&cfg);
        let nav = FatTreeNav::try_clos(&topo, &cfg).unwrap();
        assert_eq!(nav.dims(), (4, 2, 2, 3));
        assert!(nav.is_three_tier());
        assert_eq!(nav.hosts.iter().flatten().flatten().count(), 24);
    }

    #[test]
    fn leaf_spine_nav_maps_pods_and_spines() {
        let topo = leaf_spine(8, 2, 4, EVAL_BANDWIDTH, EVAL_DELAY);
        let nav = FatTreeNav::try_leaf_spine(&topo, 8, 2, 4).unwrap();
        assert_eq!(nav.dims(), (4, 2, 2, 4));
        assert!(!nav.is_three_tier());
        // Every pod sees the same shared spines.
        assert_eq!(nav.aggs[0], nav.aggs[3]);
        // Hosts attach to their pod's leaves.
        let h = nav.hosts[1][0][0];
        assert_eq!(topo.peer(PortId::new(h, 0)).node, nav.edges[1][0]);
    }

    #[test]
    fn pin_ingress_creates_overrides_on_both_tiers() {
        // Three-tier: edge and agg overrides.
        let mut topo = fat_tree(4, EVAL_BANDWIDTH, EVAL_DELAY);
        let nav = FatTreeNav::new(&topo, 4);
        let dst = nav.hosts[0][0][0];
        let edge = nav.edges[1][0];
        nav.pin_ingress_via_agg(&mut topo, edge, dst, 1, 0, 1)
            .unwrap();
        let f = hawkeye_sim::FlowKey::roce(nav.hosts[1][0][0], dst, 7);
        let path = topo.flow_path(&f).unwrap();
        // Path goes edge1_0 -> agg1_0 -> core1 -> agg0_0 -> edge0_0.
        assert_eq!(path.len(), 5);
        assert_eq!(path[1].0, nav.aggs[1][0]);
        assert_eq!(path[2].0, nav.cores[1]);

        // Two-tier: single leaf -> spine override.
        let mut topo = leaf_spine(8, 2, 4, EVAL_BANDWIDTH, EVAL_DELAY);
        let nav = FatTreeNav::try_leaf_spine(&topo, 8, 2, 4).unwrap();
        let dst = nav.hosts[0][0][0];
        let edge = nav.edges[1][0];
        nav.pin_ingress_via_agg(&mut topo, edge, dst, 1, 1, 0)
            .unwrap();
        let f = hawkeye_sim::FlowKey::roce(nav.hosts[1][0][0], dst, 7);
        let path = topo.flow_path(&f).unwrap();
        assert_eq!(path.len(), 3);
        assert_eq!(path[1].0, nav.aggs[1][1]);
    }
}
