//! Structured navigation of the `hawkeye_sim::fat_tree` topology: which
//! node is which role, and which port connects what — needed by scenario
//! builders that install deliberate routing misconfigurations.

use hawkeye_sim::{NodeId, PortId, Topology};

/// Role-indexed view of a fat-tree built by `hawkeye_sim::fat_tree(k, ..)`.
#[derive(Debug, Clone)]
pub struct FatTreeNav {
    pub k: usize,
    /// `hosts[pod][edge][i]`
    pub hosts: Vec<Vec<Vec<NodeId>>>,
    /// `edges[pod][i]`
    pub edges: Vec<Vec<NodeId>>,
    /// `aggs[pod][i]`
    pub aggs: Vec<Vec<NodeId>>,
    /// `cores[i]` (agg index `a` connects cores `a*k/2 .. (a+1)*k/2`)
    pub cores: Vec<NodeId>,
}

impl FatTreeNav {
    /// Reconstruct roles from the builder's naming scheme; panics if `topo`
    /// was not produced by `fat_tree(k, ..)`.
    pub fn new(topo: &Topology, k: usize) -> Self {
        let half = k / 2;
        let find = |name: String| -> NodeId {
            (0..topo.node_count() as u32)
                .map(NodeId)
                .find(|n| topo.name(*n) == name)
                .unwrap_or_else(|| panic!("node {name} not found"))
        };
        let mut hosts = vec![vec![Vec::new(); half]; k];
        for (pod, pod_hosts) in hosts.iter_mut().enumerate() {
            for (e, edge_hosts) in pod_hosts.iter_mut().enumerate() {
                for h in 0..half {
                    edge_hosts.push(find(format!("h{}", pod * half * half + e * half + h)));
                }
            }
        }
        let edges = (0..k)
            .map(|p| (0..half).map(|e| find(format!("edge{p}_{e}"))).collect())
            .collect();
        let aggs = (0..k)
            .map(|p| (0..half).map(|a| find(format!("agg{p}_{a}"))).collect())
            .collect();
        let cores = (0..half * half).map(|c| find(format!("core{c}"))).collect();
        FatTreeNav {
            k,
            hosts,
            edges,
            aggs,
            cores,
        }
    }

    /// The port on `from` whose link leads to `to`; panics if not adjacent.
    pub fn port_to(&self, topo: &Topology, from: NodeId, to: NodeId) -> u8 {
        (0..topo.ports(from).len() as u8)
            .find(|&p| topo.peer(PortId::new(from, p)).node == to)
            .unwrap_or_else(|| panic!("{} has no link to {}", topo.name(from), topo.name(to)))
    }

    /// Egress PortId on `from` toward `to`.
    pub fn egress(&self, topo: &Topology, from: NodeId, to: NodeId) -> PortId {
        PortId::new(from, self.port_to(topo, from, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_sim::{fat_tree, EVAL_BANDWIDTH, EVAL_DELAY};

    #[test]
    fn roles_cover_the_k4_tree() {
        let topo = fat_tree(4, EVAL_BANDWIDTH, EVAL_DELAY);
        let nav = FatTreeNav::new(&topo, 4);
        assert_eq!(nav.cores.len(), 4);
        assert_eq!(nav.edges.iter().flatten().count(), 8);
        assert_eq!(nav.aggs.iter().flatten().count(), 8);
        assert_eq!(nav.hosts.iter().flatten().flatten().count(), 16);
        // Host h0 attaches to edge0_0.
        let h0 = nav.hosts[0][0][0];
        assert_eq!(topo.peer(PortId::new(h0, 0)).node, nav.edges[0][0]);
    }

    #[test]
    fn port_to_finds_adjacency() {
        let topo = fat_tree(4, EVAL_BANDWIDTH, EVAL_DELAY);
        let nav = FatTreeNav::new(&topo, 4);
        let e = nav.edges[0][0];
        let a = nav.aggs[0][1];
        let p = nav.port_to(&topo, e, a);
        assert_eq!(topo.peer(PortId::new(e, p)).node, a);
        // Agg0_0 connects cores 0 and 1.
        let a0 = nav.aggs[0][0];
        nav.port_to(&topo, a0, nav.cores[0]);
        nav.port_to(&topo, a0, nav.cores[1]);
        // Agg0_1 connects cores 2 and 3.
        let a1 = nav.aggs[0][1];
        nav.port_to(&topo, a1, nav.cores[2]);
        nav.port_to(&topo, a1, nav.cores[3]);
    }

    #[test]
    #[should_panic(expected = "no link")]
    fn port_to_panics_for_non_adjacent() {
        let topo = fat_tree(4, EVAL_BANDWIDTH, EVAL_DELAY);
        let nav = FatTreeNav::new(&topo, 4);
        // edge0_0 and core0 are not directly linked.
        nav.port_to(&topo, nav.edges[0][0], nav.cores[0]);
    }
}
