//! Empirical RoCEv2 flow-size distribution (§4.1).
//!
//! The paper describes a long-tailed distribution from an industrial data
//! center (in the style of Roy et al., SIGCOMM'15): "<80% of flows are
//! smaller than 10 MB, <90% of flows are smaller than 100 MB, and about 10%
//! flows are 100 MB ~ 300 MB". We pin those quantiles exactly and fill in
//! the mice-heavy low end (§2.2 stresses "the significant occurrence of
//! bursty mice flows"), interpolating log-uniformly within segments.

use rand::Rng;

/// A piecewise log-uniform flow-size distribution.
#[derive(Debug, Clone)]
pub struct FlowSizeDist {
    /// (cumulative probability, upper size bound in bytes) breakpoints.
    segments: Vec<(f64, f64, f64)>, // (cum_lo, lo_bytes, hi_bytes) with implicit cum_hi from next
    cums: Vec<f64>,
}

impl FlowSizeDist {
    /// The paper's empirical distribution.
    pub fn empirical() -> Self {
        // (probability mass, low, high) per segment.
        let segs: &[(f64, f64, f64)] = &[
            (0.50, 1e3, 1e5), // mice: 1 KB - 100 KB
            (0.30, 1e5, 1e7), // 100 KB - 10 MB   (80% below 10 MB)
            (0.10, 1e7, 1e8), // 10 MB - 100 MB   (90% below 100 MB)
            (0.10, 1e8, 3e8), // 100 MB - 300 MB  (the 10% tail)
        ];
        let mut segments = Vec::new();
        let mut cums = Vec::new();
        let mut cum = 0.0;
        for &(p, lo, hi) in segs {
            segments.push((cum, lo, hi));
            cums.push(cum);
            cum += p;
        }
        FlowSizeDist { segments, cums }
    }

    /// Sample one flow size in bytes.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        // Find the segment containing u.
        let idx = match self.cums.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        let (cum_lo, lo, hi) = self.segments[idx];
        let cum_hi = self.segments.get(idx + 1).map_or(1.0, |s| s.0);
        let frac = (u - cum_lo) / (cum_hi - cum_lo);
        // Log-uniform within the segment.
        let bytes = lo * (hi / lo).powf(frac);
        bytes.round() as u64
    }

    /// Mean flow size (bytes), analytic over the log-uniform segments.
    pub fn mean(&self) -> f64 {
        let mut m = 0.0;
        for (i, &(cum_lo, lo, hi)) in self.segments.iter().enumerate() {
            let cum_hi = self.segments.get(i + 1).map_or(1.0, |s| s.0);
            let p = cum_hi - cum_lo;
            // E[X] for log-uniform on [lo, hi] = (hi - lo) / ln(hi / lo).
            let seg_mean = (hi - lo) / (hi / lo).ln();
            m += p * seg_mean;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quantile(samples: &mut [u64], q: f64) -> u64 {
        samples.sort_unstable();
        samples[((samples.len() as f64 - 1.0) * q) as usize]
    }

    #[test]
    fn quantiles_match_the_paper() {
        let d = FlowSizeDist::empirical();
        let mut rng = StdRng::seed_from_u64(42);
        let mut s: Vec<u64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        // <80% of flows are smaller than 10 MB.
        assert!((quantile(&mut s, 0.80) as f64 - 1e7).abs() / 1e7 < 0.1);
        // <90% smaller than 100 MB.
        assert!((quantile(&mut s, 0.90) as f64 - 1e8).abs() / 1e8 < 0.1);
        // Max within 300 MB.
        assert!(*s.last().unwrap() <= 300_000_000);
        // Mice-heavy low end.
        assert!(quantile(&mut s, 0.49) <= 100_000);
    }

    #[test]
    fn samples_within_bounds() {
        let d = FlowSizeDist::empirical();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((1_000..=300_000_000).contains(&s), "{s}");
        }
    }

    #[test]
    fn mean_is_tail_dominated() {
        let d = FlowSizeDist::empirical();
        let m = d.mean();
        // ~10% of 100-300MB flows dominate: mean must be tens of MB.
        assert!(m > 1e7 && m < 1e8, "mean {m}");
        // Empirical mean agrees within 10%.
        let mut rng = StdRng::seed_from_u64(1);
        let emp: f64 = (0..200_000).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / 200_000.0;
        assert!((emp - m).abs() / m < 0.1, "emp {emp} vs {m}");
    }

    #[test]
    fn deterministic_under_seed() {
        let d = FlowSizeDist::empirical();
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
