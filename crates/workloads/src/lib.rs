//! # hawkeye-workloads
//!
//! Workload and anomaly-scenario generation for the Hawkeye evaluation
//! (§4.1 of the paper): the empirical long-tailed RoCEv2 flow-size
//! distribution, Poisson background traffic at a configurable link load,
//! fat-tree navigation helpers, and builders for the six anomaly scenarios
//! (with ground truth) that drive every accuracy experiment.

pub mod background;
pub mod fattree;
pub mod flowsize;
pub mod scenario;
pub mod topospec;

pub use background::{generate as generate_background, BackgroundConfig, FlowSpec};
pub use fattree::{FatTreeNav, NavError};
pub use flowsize::FlowSizeDist;
pub use scenario::{
    build as build_scenario, build_on as build_scenario_on, GroundTruth, Scenario,
    ScenarioBuildError, ScenarioKind, ScenarioParams,
};
pub use topospec::TopologySpec;
