//! Anomaly scenarios with ground truth (§4.1 "Workload").
//!
//! Each scenario is built on the paper's evaluation topology (fat-tree K=4,
//! 100 Gbps, 2 µs) with empirical background traffic, plus an injected
//! anomaly and the ground-truth record used for precision/recall scoring:
//!
//! - **Micro-burst incast**: synchronized bursts converge on one edge
//!   switch's host egress from three different ingress ports; PFC cascades
//!   to an inter-pod victim.
//! - **PFC storm**: a host NIC continuously injects PAUSE frames; a victim
//!   flow into that host stalls with no flow contention anywhere.
//! - **In-loop deadlock**: destination-based route overrides (the paper's
//!   "routing misconfiguration") create a cyclic buffer dependency around
//!   pod 0's {e0, a0, e1, a1}; a transient burst into the ring closes the
//!   cycle into a persistent deadlock.
//! - **Out-of-loop deadlock (contention/injection)**: the same CBD, but the
//!   initial congestion sits on a host egress outside the loop — caused by
//!   local flow contention or by host PFC injection.
//! - **Normal contention**: an incast whose PFC reaches only the culprit
//!   NICs, so no switch-to-switch spreading exists.

use crate::background::{self, BackgroundConfig, FlowSpec};
use crate::fattree::{FatTreeNav, NavError};
use crate::topospec::TopologySpec;
use hawkeye_core::AnomalyType;
use hawkeye_sim::{
    AgentConfig, FaultPlan, FlowKey, Nanos, NodeId, PfcInjectorConfig, PortId, SimConfig,
    Simulator, SwitchHook, Topology,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// The anomaly classes a scenario can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    MicroBurstIncast,
    PfcStorm,
    InLoopDeadlock,
    OutOfLoopDeadlockContention,
    OutOfLoopDeadlockInjection,
    NormalContention,
}

impl ScenarioKind {
    pub const ALL: [ScenarioKind; 6] = [
        ScenarioKind::MicroBurstIncast,
        ScenarioKind::PfcStorm,
        ScenarioKind::InLoopDeadlock,
        ScenarioKind::OutOfLoopDeadlockContention,
        ScenarioKind::OutOfLoopDeadlockInjection,
        ScenarioKind::NormalContention,
    ];

    pub fn expected_anomaly(self) -> AnomalyType {
        match self {
            ScenarioKind::MicroBurstIncast => AnomalyType::MicroBurstIncast,
            ScenarioKind::PfcStorm => AnomalyType::PfcStorm,
            ScenarioKind::InLoopDeadlock => AnomalyType::InLoopDeadlock,
            ScenarioKind::OutOfLoopDeadlockContention => AnomalyType::OutOfLoopDeadlockContention,
            ScenarioKind::OutOfLoopDeadlockInjection => AnomalyType::OutOfLoopDeadlockInjection,
            ScenarioKind::NormalContention => AnomalyType::NormalContention,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::MicroBurstIncast => "microburst-incast",
            ScenarioKind::PfcStorm => "pfc-storm",
            ScenarioKind::InLoopDeadlock => "in-loop-deadlock",
            ScenarioKind::OutOfLoopDeadlockContention => "out-of-loop-deadlock-contention",
            ScenarioKind::OutOfLoopDeadlockInjection => "out-of-loop-deadlock-injection",
            ScenarioKind::NormalContention => "normal-contention",
        }
    }

    /// Inverse of [`ScenarioKind::name`] (used by the corpus bank format).
    pub fn from_name(s: &str) -> Option<ScenarioKind> {
        ScenarioKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// Why a scenario could not be built on a given topology. The fuzzer
/// depends on these being typed (not panics) so degenerate mutated
/// topologies are rejected and counted, never crash the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioBuildError {
    /// The topology could not be navigated as a Clos-family fabric.
    Nav(NavError),
    /// A role the scenario scripts (pods/edges/hosts/cores) does not exist
    /// at these dimensions.
    TooSmall {
        what: &'static str,
        need: usize,
        have: usize,
    },
    /// No source port in the search window pins the flow onto the
    /// required path (ECMP never traverses the needed switches).
    NoPinnablePort { src: NodeId, dst: NodeId },
}

impl fmt::Display for ScenarioBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioBuildError::Nav(e) => write!(f, "topology navigation: {e}"),
            ScenarioBuildError::TooSmall { what, need, have } => {
                write!(f, "topology too small: need {need} {what}, have {have}")
            }
            ScenarioBuildError::NoPinnablePort { src, dst } => {
                write!(f, "no src port pins {src}->{dst} onto the required path")
            }
        }
    }
}

impl std::error::Error for ScenarioBuildError {}

impl From<NavError> for ScenarioBuildError {
    fn from(e: NavError) -> Self {
        ScenarioBuildError::Nav(e)
    }
}

/// What actually happened, for scoring diagnoses.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    pub anomaly: AnomalyType,
    /// Flows injected as the congestion culprits (empty for injections).
    pub culprit_flows: Vec<FlowKey>,
    /// The PFC-injecting host, for injection-rooted anomalies.
    pub injection_host: Option<NodeId>,
    /// The designated victim flow whose detection triggers diagnosis.
    pub victim: FlowKey,
    /// Switches causally relevant to the anomaly (victim path + PFC
    /// spreading path), for the Fig. 11 coverage experiment.
    pub causal_switches: Vec<NodeId>,
    /// When the anomaly is injected.
    pub anomaly_at: Nanos,
    /// Expected initial congestion port (for reporting).
    pub initial_port: Option<PortId>,
}

/// Scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioParams {
    pub seed: u64,
    /// Background load fraction (paper varies link load; 0 disables).
    pub load: f64,
    pub duration: Nanos,
    pub anomaly_at: Nanos,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            seed: 1,
            load: 0.2,
            duration: Nanos::from_millis(3),
            anomaly_at: Nanos::from_millis(1),
        }
    }
}

/// A fully specified experiment: topology + flows + faults + truth.
pub struct Scenario {
    pub kind: ScenarioKind,
    pub topo: Topology,
    pub flows: Vec<FlowSpec>,
    pub injectors: Vec<(NodeId, PfcInjectorConfig)>,
    pub truth: GroundTruth,
    pub params: ScenarioParams,
    /// Simulation configuration the scenario requires. Deadlock scenarios
    /// deepen the PFC Xoff/Xon hysteresis (and mark the CBD flows as
    /// CC-non-compliant): a cyclic buffer dependency only freezes into a
    /// deadlock when the end-to-end control loop loses the race against
    /// pause propagation, which is exactly the regime the paper's deadlock
    /// traces exercise. Normal-contention runs a PFC-less (traditional)
    /// fabric, the degenerate case §3.5.2 describes.
    pub sim_config: SimConfig,
}

impl Scenario {
    /// Instantiate a simulator with a monitoring hook and the reference
    /// agent config; the caller then calls `run_until(self.params.duration)`.
    /// Instantiate with the scenario's own `sim_config` but a caller-chosen
    /// seed.
    pub fn instantiate_seeded<H: SwitchHook>(
        &self,
        seed: u64,
        agent: AgentConfig,
        hook: H,
    ) -> Simulator<H> {
        let cfg = SimConfig {
            seed,
            ..self.sim_config
        };
        self.instantiate(cfg, agent, hook)
    }

    /// [`Scenario::instantiate_seeded`] with a control-plane fault plan.
    /// `FaultPlan::none()` reproduces `instantiate_seeded` exactly.
    pub fn instantiate_faulted<H: SwitchHook>(
        &self,
        seed: u64,
        agent: AgentConfig,
        hook: H,
        faults: FaultPlan,
    ) -> Simulator<H> {
        let cfg = SimConfig {
            seed,
            faults,
            ..self.sim_config
        };
        self.instantiate(cfg, agent, hook)
    }

    pub fn instantiate<H: SwitchHook>(
        &self,
        sim_cfg: SimConfig,
        agent: AgentConfig,
        hook: H,
    ) -> Simulator<H> {
        let mut sim = Simulator::new(self.topo.clone(), sim_cfg, hook);
        sim.enable_agents(agent);
        for f in &self.flows {
            sim.add_flow_full(f.key, f.size_bytes, f.start, f.max_rate_bps, f.cc_enabled);
        }
        for (host, inj) in &self.injectors {
            sim.set_pfc_injector(*host, *inj);
        }
        sim
    }

    /// The reference detection-agent configuration for this topology
    /// (threshold factor per the paper's 200%-500% sweep).
    pub fn agent(threshold_factor: f64) -> AgentConfig {
        AgentConfig {
            rtt_threshold_factor: threshold_factor,
            // Maximum unloaded RTT of the K=4 fat-tree (5 hops each way).
            base_rtt: Nanos::from_micros(20),
            check_interval: Nanos::from_micros(50),
            dedup_interval: Nanos::from_millis(2),
            periodic_probe: None,
            retry: None,
        }
    }
}

/// Find a source port in `base..base+4096` whose ECMP path traverses every
/// switch in `via`, so scenarios can pin flows onto specific paths without
/// route overrides. Panics if none exists (would indicate a topology bug).
pub fn pick_src_port(topo: &Topology, src: NodeId, dst: NodeId, via: &[NodeId], base: u16) -> u16 {
    try_pick_src_port(topo, src, dst, via, base)
        .unwrap_or_else(|| panic!("no src port pins {src}->{dst} via {via:?}"))
}

/// Fallible [`pick_src_port`]: `None` when no port in the window pins the
/// path — possible on degraded or fuzzer-mutated topologies.
pub fn try_pick_src_port(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    via: &[NodeId],
    base: u16,
) -> Option<u16> {
    for sp in base..base.saturating_add(4096) {
        let key = FlowKey::roce(src, dst, sp);
        if let Some(path) = topo.flow_path(&key) {
            let nodes: Vec<NodeId> = path.iter().map(|(n, _, _)| *n).collect();
            if via.iter().all(|v| nodes.contains(v)) {
                return Some(sp);
            }
        }
    }
    None
}

/// [`try_pick_src_port`] with the typed error scenario builders bubble up.
fn pick(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    via: &[NodeId],
    base: u16,
) -> Result<u16, ScenarioBuildError> {
    try_pick_src_port(topo, src, dst, via, base)
        .ok_or(ScenarioBuildError::NoPinnablePort { src, dst })
}

/// Build a scenario of the given kind on the paper's evaluation topology
/// (fat-tree K=4). Infallible there by construction.
pub fn build(kind: ScenarioKind, params: ScenarioParams) -> Scenario {
    build_on(&TopologySpec::EVAL, kind, params)
        .expect("k=4 fat-tree satisfies every scenario's role requirements")
}

/// Build a scenario of the given kind on an arbitrary Clos-family
/// topology. The same seed produces structurally equivalent scenarios on
/// any member: role indices are drawn from the topology's own dimensions
/// (identical to the historical literals at K=4), and every scripted role
/// is checked to exist before use.
pub fn build_on(
    spec: &TopologySpec,
    kind: ScenarioKind,
    params: ScenarioParams,
) -> Result<Scenario, ScenarioBuildError> {
    let (topo, nav) = spec.build()?;
    let (pods, epp, app, hpe) = nav.dims();
    for (what, need, have) in [
        ("pods", 4, pods),
        ("edges/pod", 2, epp),
        ("aggs/pod", 2, app),
        ("hosts/edge", 2, hpe),
    ] {
        if have < need {
            return Err(ScenarioBuildError::TooSmall { what, need, have });
        }
    }
    if nav.is_three_tier() && nav.cores_per_group < 2 {
        return Err(ScenarioBuildError::TooSmall {
            what: "cores/agg-group",
            need: 2,
            have: nav.cores_per_group,
        });
    }
    build_with_nav(topo, nav, kind, params)
}

fn build_with_nav(
    mut topo: Topology,
    nav: FatTreeNav,
    kind: ScenarioKind,
    params: ScenarioParams,
) -> Result<Scenario, ScenarioBuildError> {
    let (pods, epp, _, hpe) = nav.dims();
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x5CE_A110);

    let mut flows = if params.load > 0.0 {
        background::generate(
            &topo,
            &BackgroundConfig {
                load: params.load,
                duration: params.duration,
                ..Default::default()
            },
            params.seed,
        )
    } else {
        Vec::new()
    };
    let mut injectors = Vec::new();

    // Pod-0 cast of characters (see module docs).
    let e0 = nav.edges[0][0];
    let e1 = nav.edges[0][1];
    let a0 = nav.aggs[0][0];
    let a1 = nav.aggs[0][1];
    let h_t = nav.hosts[0][0][0]; // incast target on e0
    let h_l = nav.hosts[0][0][1]; // e0's other host
    let h2 = nav.hosts[0][1][0]; // e1's hosts
    let h3 = nav.hosts[0][1][1];
    let at = params.anomaly_at;
    let at_us = at.as_nanos() / 1000;

    // Pick a random remote pod host as the victim's source for variety.
    // Bounds derive from the topology's dimensions; at K=4 they equal the
    // historical literals (0..3, 0..2, 0..2), so existing seeds replay
    // byte-identically.
    let vic_pod = 1 + (rng.gen_range(0..pods - 1));
    let vic_src = nav.hosts[vic_pod][rng.gen_range(0..epp)][rng.gen_range(0..hpe)];

    let truth = match kind {
        ScenarioKind::MicroBurstIncast => {
            // Three bursts into h_t via three different e0 ingress ports:
            // local (h_l), via a0, via a1.
            let b_local = FlowKey::roce(h_l, h_t, 500);
            let src_a0 = h2;
            let src_a1 = h3;
            let sp_a0 = pick(&topo, src_a0, h_t, &[a0], 600)?;
            let sp_a1 = pick(&topo, src_a1, h_t, &[a1], 700)?;
            let b_via_a0 = FlowKey::roce(src_a0, h_t, sp_a0);
            let b_via_a1 = FlowKey::roce(src_a1, h_t, sp_a1);
            for b in [b_local, b_via_a0, b_via_a1] {
                flows.push(FlowSpec {
                    key: b,
                    size_bytes: 2_000_000,
                    start: at,
                    max_rate_bps: None,
                    cc_enabled: true,
                });
            }
            // Victim: remote pod -> h_l, pinned through a0 (whose egress to
            // e0 gets paused by the burst backpressure). Moderately paced so
            // it does not squeeze the a0-side burst off the shared a0->e0
            // link.
            let sp_v = pick(&topo, vic_src, h_l, &[a0], 800)?;
            let victim = FlowKey::roce(vic_src, h_l, sp_v);
            flows.push(FlowSpec {
                key: victim,
                size_bytes: 40_000_000,
                start: Nanos::ZERO,
                max_rate_bps: Some(30e9),
                cc_enabled: true,
            });
            // Light mice into the incast target keep the replayed queue
            // asymmetric (the paper's congested ports always carry some
            // pass-through workload).
            let m_src = nav.hosts[vic_pod][0][0];
            let sp_m = pick(&topo, m_src, h_t, &[a0], 900)?;
            for i in 0..8u64 {
                flows.push(FlowSpec {
                    key: FlowKey::roce(m_src, h_t, sp_m + (i as u16) * 977),
                    size_bytes: 64_000,
                    start: at + Nanos::from_micros(15 * i),
                    max_rate_bps: None,
                    cc_enabled: true,
                });
            }
            let vic_path: Vec<NodeId> = topo
                .flow_path(&victim)
                .unwrap()
                .iter()
                .map(|(n, _, _)| *n)
                .collect();
            let mut causal = vic_path;
            causal.push(e0);
            causal.sort_unstable();
            causal.dedup();
            GroundTruth {
                anomaly: AnomalyType::MicroBurstIncast,
                culprit_flows: vec![b_local, b_via_a0, b_via_a1],
                injection_host: None,
                victim,
                causal_switches: causal,
                anomaly_at: at,
                initial_port: Some(nav.egress(&topo, e0, h_t)),
            }
        }

        ScenarioKind::PfcStorm => {
            // h_t's NIC floods PAUSE frames; the victim flows right into it.
            // The injection persists to the end of the trace: the agent
            // keeps re-detecting and diagnosis examines a live storm (the
            // paper notes storms "present different durations"; the
            // duration sweep is exercised by the storm example binary).
            injectors.push((
                h_t,
                PfcInjectorConfig {
                    start: at,
                    stop: params.duration,
                    period: Nanos::from_micros(100),
                },
            ));
            let sp_v = pick(&topo, vic_src, h_t, &[a0], 800)?;
            let victim = FlowKey::roce(vic_src, h_t, sp_v);
            flows.push(FlowSpec {
                key: victim,
                size_bytes: 40_000_000,
                start: Nanos::ZERO,
                max_rate_bps: None,
                cc_enabled: true,
            });
            let mut causal: Vec<NodeId> = topo
                .flow_path(&victim)
                .unwrap()
                .iter()
                .map(|(n, _, _)| *n)
                .collect();
            causal.sort_unstable();
            causal.dedup();
            GroundTruth {
                anomaly: AnomalyType::PfcStorm,
                culprit_flows: vec![],
                injection_host: Some(h_t),
                victim,
                causal_switches: causal,
                anomaly_at: at,
                initial_port: Some(nav.egress(&topo, e0, h_t)),
            }
        }

        ScenarioKind::InLoopDeadlock
        | ScenarioKind::OutOfLoopDeadlockContention
        | ScenarioKind::OutOfLoopDeadlockInjection => {
            // --- Cyclic buffer dependency around e0 -> a0 -> e1 -> a1 -> e0.
            // Destination-based overrides ("routing misconfiguration"):
            //   dst h2: a1 -> e0, e0 -> a0   (a0 -> e1 -> h2 is normal)
            //   dst h1: a0 -> e1, e1 -> a1   (a1 -> e0 -> h1 is normal)
            let h1 = h_l;
            let p_a1_e0 = nav.try_port_to(&topo, a1, e0)?;
            topo.add_route_override(a1, h2, p_a1_e0);
            let p_e0_a0 = nav.try_port_to(&topo, e0, a0)?;
            topo.add_route_override(e0, h2, p_e0_a0);
            let p_a0_e1 = nav.try_port_to(&topo, a0, e1)?;
            topo.add_route_override(a0, h1, p_a0_e1);
            let p_e1_a1 = nav.try_port_to(&topo, e1, a1)?;
            topo.add_route_override(e1, h1, p_e1_a1);

            // Ring flows (rate-capped so the ring is loss-free pre-trigger):
            // Q: h_t(e0) -> h2 rides (e0 a0), (a0 e1).
            // P: pod1 -> h1 arrives at a0 via c0, rides (a0 e1), (e1 a1),
            //    (a1 e0).
            // S: pod1 -> h2 arrives at a1 via c2, rides (a1 e0), (e0 a0),
            //    (a0 e1).
            let p_src = nav.hosts[1][0][0];
            let s_src = nav.hosts[1][0][1];
            // Pin P through a0 and S through a1 with pod-1 overrides
            // (three-tier: edge→agg→core; two-tier: leaf→spine directly).
            let e_p1 = nav.edges[1][0];
            nav.pin_ingress_via_agg(&mut topo, e_p1, h1, 1, 0, 0)?;
            nav.pin_ingress_via_agg(&mut topo, e_p1, h2, 1, 1, 0)?;

            let ring_rate = Some(30e9);
            let q = FlowKey::roce(h_t, h2, 500);
            let p = FlowKey::roce(p_src, h1, 501);
            let s = FlowKey::roce(s_src, h2, 502);
            // Established a few epochs before the trigger — long enough for
            // the diagnosis to learn their steady-state baseline, short
            // enough that background bursts are unlikely to fire the CBD
            // tripwire before the scripted anomaly.
            let ring_start = at.saturating_sub(Nanos::from_micros(450));
            for k in [q, p, s] {
                flows.push(FlowSpec {
                    key: k,
                    size_bytes: 60_000_000,
                    start: ring_start,
                    max_rate_bps: ring_rate,
                    cc_enabled: false,
                });
            }
            let ring_ports = vec![
                nav.egress(&topo, e0, a0),
                nav.egress(&topo, a0, e1),
                nav.egress(&topo, e1, a1),
                nav.egress(&topo, a1, e0),
            ];
            // Causally relevant switches (paper Fig. 11 semantics): the
            // victim's path plus the PFC spreading path — here the CBD
            // ring. The culprits' own source paths are upstream of the
            // initial congestion point and are NOT part of the trace.
            let mut causal = vec![e0, a0, e1, a1];

            let (anomaly, culprits, inj_host, initial) = match kind {
                ScenarioKind::InLoopDeadlock => {
                    // Two line-rate bursts converging on the ring port
                    // a0 -> e1 via both cores (pods 1 and 2 -> h3, pinned
                    // through a0). Long enough to outlive loop closure, so
                    // the last ring port to freeze still records paused
                    // enqueues; heavy enough that the upstream pause
                    // outlasts each downstream ingress fill.
                    let b1_src = nav.hosts[1][1][0];
                    let b2_src = nav.hosts[2][0][0];
                    let e_b1 = nav.edges[1][1];
                    let e_b2 = nav.edges[2][0];
                    nav.pin_ingress_via_agg(&mut topo, e_b1, h3, 1, 0, 1)?;
                    nav.pin_ingress_via_agg(&mut topo, e_b2, h3, 2, 0, 0)?;
                    let b1 = FlowKey::roce(b1_src, h3, 600);
                    let b2 = FlowKey::roce(b2_src, h3, 601);
                    for b in [b1, b2] {
                        flows.push(FlowSpec {
                            key: b,
                            size_bytes: 6_000_000,
                            start: at,
                            max_rate_bps: None,
                            cc_enabled: false,
                        });
                    }
                    (
                        AnomalyType::InLoopDeadlock,
                        vec![b1, b2],
                        None,
                        nav.egress(&topo, a0, e1),
                    )
                }
                ScenarioKind::OutOfLoopDeadlockInjection => {
                    // h3 injects PAUSE; feeder T (pod1 -> h3 via a0) backs
                    // up into the ring.
                    // Time-limited injection: the CBD chain closes while the
                    // ring's own flows still feed it; once the loop is shut
                    // it self-sustains regardless of the injector.
                    injectors.push((
                        h3,
                        PfcInjectorConfig {
                            start: at,
                            stop: at + Nanos::from_micros(800),
                            period: Nanos::from_micros(100),
                        },
                    ));
                    let t_src = nav.hosts[1][1][0];
                    let e_t = nav.edges[1][1];
                    nav.pin_ingress_via_agg(&mut topo, e_t, h3, 1, 0, 1)?;
                    let t = FlowKey::roce(t_src, h3, 600);
                    // Starts just after the injection (so every enqueue of T
                    // at the dead egress is a paused one — pure injection,
                    // zero contention); T's backlog into the paused h3
                    // egress is what pulls the CBD shut.
                    // Small: just enough to fill the ingress behind the dead
                    // egress; a large feeder would flood h3 with residual
                    // contention if the injector ever releases.
                    flows.push(FlowSpec {
                        key: t,
                        size_bytes: 600_000,
                        start: at + Nanos::from_micros(20),
                        max_rate_bps: None,
                        cc_enabled: false,
                    });
                    (
                        AnomalyType::OutOfLoopDeadlockInjection,
                        vec![],
                        Some(h3),
                        nav.egress(&topo, e1, h3),
                    )
                }
                _ => {
                    // Out-of-loop contention: h3's egress congested by two
                    // comparable bursts — a local one (h2 -> h3) and one
                    // arriving via a1 (the non-CBD direction of the e1-a1
                    // link) — while a train of mice through a0 backs the
                    // congestion into the ring.
                    let local = FlowKey::roce(h2, h3, 601);
                    let r_src = nav.hosts[3][0][0];
                    let sp_r = pick(&topo, r_src, h3, &[a1], 620)?;
                    let via_a1 = FlowKey::roce(r_src, h3, sp_r);
                    for k in [local, via_a1] {
                        flows.push(FlowSpec {
                            key: k,
                            size_bytes: 4_000_000,
                            start: at,
                            max_rate_bps: None,
                            cc_enabled: false,
                        });
                    }
                    let m_src = nav.hosts[1][1][0];
                    let e_t = nav.edges[1][1];
                    nav.pin_ingress_via_agg(&mut topo, e_t, h3, 1, 0, 1)?;
                    for i in 0..30u64 {
                        flows.push(FlowSpec {
                            key: FlowKey::roce(m_src, h3, 700 + i as u16),
                            size_bytes: 64_000,
                            start: at + Nanos::from_micros(10 * i),
                            max_rate_bps: None,
                            cc_enabled: false,
                        });
                    }
                    (
                        AnomalyType::OutOfLoopDeadlockContention,
                        vec![local, via_a1],
                        None,
                        nav.egress(&topo, e1, h3),
                    )
                }
            };

            // The victim is one of the ring flows: Q stalls inside the CBD.
            causal.sort_unstable();
            causal.dedup();
            let _ = at_us;
            let _ = ring_ports;
            GroundTruth {
                anomaly,
                culprit_flows: culprits,
                injection_host: inj_host,
                victim: q,
                causal_switches: causal,
                anomaly_at: at,
                initial_port: Some(initial),
            }
        }

        ScenarioKind::NormalContention => {
            // Incast into h_t whose PFC reaches only the sender NICs: three
            // line-rate contenders from e0's and e1's hosts plus the victim
            // into the same port; no switch egress toward another switch is
            // ever paused long enough to spread.
            let c1 = FlowKey::roce(h_l, h_t, 500);
            let sp2 = pick(&topo, h2, h_t, &[a0], 600)?;
            let sp3 = pick(&topo, h3, h_t, &[a1], 700)?;
            let c2 = FlowKey::roce(h2, h_t, sp2);
            let c3 = FlowKey::roce(h3, h_t, sp3);
            for c in [c1, c2, c3] {
                flows.push(FlowSpec {
                    key: c,
                    size_bytes: 3_000_000,
                    start: at,
                    max_rate_bps: None,
                    cc_enabled: true,
                });
            }
            // Victim: a modest earlier flow into h_t from pod 1, capped so
            // it is clearly a victim, not a contributor.
            let sp_v = pick(&topo, vic_src, h_t, &[a0], 800)?;
            let victim = FlowKey::roce(vic_src, h_t, sp_v);
            flows.push(FlowSpec {
                key: victim,
                size_bytes: 40_000_000,
                start: Nanos::ZERO,
                max_rate_bps: Some(20e9),
                cc_enabled: true,
            });
            let mut causal: Vec<NodeId> = topo
                .flow_path(&victim)
                .unwrap()
                .iter()
                .map(|(n, _, _)| *n)
                .collect();
            causal.sort_unstable();
            causal.dedup();
            GroundTruth {
                anomaly: AnomalyType::NormalContention,
                culprit_flows: vec![c1, c2, c3],
                injection_host: None,
                victim,
                causal_switches: causal,
                anomaly_at: at,
                initial_port: Some(nav.egress(&topo, e0, h_t)),
            }
        }
    };

    let mut sim_config = SimConfig::default();
    if matches!(
        kind,
        ScenarioKind::InLoopDeadlock
            | ScenarioKind::OutOfLoopDeadlockContention
            | ScenarioKind::OutOfLoopDeadlockInjection
    ) {
        // Deep Xoff/Xon hysteresis: each hop's pause must outlast the next
        // hop's ingress fill time for the backpressure wave to travel the
        // whole cycle (Hu et al.'s deadlock-formation condition). The CBD
        // flows themselves are marked CC-non-compliant instead of disabling
        // ECN network-wide, so background traffic behaves normally.
        sim_config.switch.xon_bytes = 4 * 1024;
    }
    if kind == ScenarioKind::NormalContention {
        // The paper's "traditional congestion" degenerate case: contention
        // in a network whose flow control is not PFC (the diagnosis then
        // reduces to classic queue-contention analysis). Deeper ECN
        // thresholds let the queue grow enough to trip the RTT detector.
        sim_config.switch.pfc_enabled = false;
        sim_config.switch.ecn_kmin = 300 * 1024;
        sim_config.switch.ecn_kmax = 600 * 1024;
    }

    Ok(Scenario {
        kind,
        topo,
        flows,
        injectors,
        truth,
        params,
        sim_config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_build() {
        for kind in ScenarioKind::ALL {
            let s = build(kind, ScenarioParams::default());
            assert_eq!(s.truth.anomaly, kind.expected_anomaly());
            assert!(!s.flows.is_empty());
            assert!(!s.truth.causal_switches.is_empty());
            // The victim exists among the flows.
            assert!(s.flows.iter().any(|f| f.key == s.truth.victim));
        }
    }

    #[test]
    fn deadlock_overrides_create_the_cbd_paths() {
        let s = build(
            ScenarioKind::InLoopDeadlock,
            ScenarioParams {
                load: 0.0,
                ..Default::default()
            },
        );
        let nav = FatTreeNav::new(&s.topo, 4);
        let (e0, e1, a0, a1) = (
            nav.edges[0][0],
            nav.edges[0][1],
            nav.aggs[0][0],
            nav.aggs[0][1],
        );
        // Q: e0 -> a0 -> e1.
        let q = s.flows.iter().find(|f| f.key.src_port == 500).unwrap();
        let qp: Vec<NodeId> = s
            .topo
            .flow_path(&q.key)
            .unwrap()
            .iter()
            .map(|x| x.0)
            .collect();
        assert_eq!(qp, vec![e0, a0, e1]);
        // P bounces a0 -> e1 -> a1 -> e0.
        let p = s.flows.iter().find(|f| f.key.src_port == 501).unwrap();
        let pp: Vec<NodeId> = s
            .topo
            .flow_path(&p.key)
            .unwrap()
            .iter()
            .map(|x| x.0)
            .collect();
        assert_eq!(&pp[pp.len() - 4..], &[a0, e1, a1, e0]);
        // S bounces a1 -> e0 -> a0 -> e1.
        let sf = s.flows.iter().find(|f| f.key.src_port == 502).unwrap();
        let sp: Vec<NodeId> = s
            .topo
            .flow_path(&sf.key)
            .unwrap()
            .iter()
            .map(|x| x.0)
            .collect();
        assert_eq!(&sp[sp.len() - 4..], &[a1, e0, a0, e1]);
    }

    #[test]
    fn incast_bursts_enter_via_three_ports() {
        let s = build(
            ScenarioKind::MicroBurstIncast,
            ScenarioParams {
                load: 0.0,
                ..Default::default()
            },
        );
        let nav = FatTreeNav::new(&s.topo, 4);
        let e0 = nav.edges[0][0];
        // The three culprits' last hops reach e0 via three distinct ingress
        // ports.
        let mut in_ports = Vec::new();
        for c in &s.truth.culprit_flows {
            let path = s.topo.flow_path(c).unwrap();
            let (sw, in_port, _) = *path.last().unwrap();
            assert_eq!(sw, e0);
            in_ports.push(in_port);
        }
        in_ports.sort_unstable();
        in_ports.dedup();
        assert_eq!(in_ports.len(), 3, "three distinct ingress directions");
    }

    #[test]
    fn all_scenarios_build_on_every_corpus_topology() {
        let params = ScenarioParams {
            load: 0.0,
            ..Default::default()
        };
        for spec in TopologySpec::corpus() {
            for kind in ScenarioKind::ALL {
                let s = build_on(&spec, kind, params)
                    .unwrap_or_else(|e| panic!("{spec} {}: {e}", kind.name()));
                assert_eq!(s.truth.anomaly, kind.expected_anomaly());
                assert!(s.flows.iter().any(|f| f.key == s.truth.victim), "{spec}");
                // Every scripted flow routes end to end on this fabric.
                for f in &s.flows {
                    assert!(
                        s.topo.flow_path(&f.key).is_some(),
                        "{spec} {}: flow {} does not route",
                        kind.name(),
                        f.key
                    );
                }
            }
        }
    }

    #[test]
    fn too_small_topologies_reject_typed() {
        let params = ScenarioParams::default();
        // 2 pods < the 4 the scenarios script.
        let err = build_on(
            &TopologySpec::LeafSpine {
                leaves: 4,
                spines: 2,
                hosts_per_leaf: 2,
            },
            ScenarioKind::MicroBurstIncast,
            params,
        )
        .err()
        .expect("small leaf-spine must be rejected");
        assert!(
            matches!(err, ScenarioBuildError::TooSmall { what: "pods", .. }),
            "{err}"
        );
        // k=2 fat-tree has 1 edge/agg per pod.
        let err = build_on(
            &TopologySpec::FatTree { k: 2 },
            ScenarioKind::InLoopDeadlock,
            params,
        )
        .err()
        .expect("k=2 fat-tree must be rejected");
        assert!(matches!(err, ScenarioBuildError::TooSmall { .. }), "{err}");
    }

    #[test]
    fn same_seed_is_structurally_equivalent_across_k() {
        // The role draws use the same RNG sequence on every K, so the
        // victim source sits at the same (pod, edge, host) coordinates
        // whenever the smaller tree contains them.
        let params = ScenarioParams::default();
        let s4 = build_on(
            &TopologySpec::FatTree { k: 4 },
            ScenarioKind::PfcStorm,
            params,
        )
        .unwrap();
        let s8 = build_on(
            &TopologySpec::FatTree { k: 8 },
            ScenarioKind::PfcStorm,
            params,
        )
        .unwrap();
        // Both storms inject at the pod-0 incast target h_t = hosts[0][0][0],
        // which is h0 in both trees.
        assert_eq!(s4.truth.injection_host, s8.truth.injection_host);
    }

    #[test]
    fn scenarios_are_deterministic_per_seed() {
        let a = build(ScenarioKind::PfcStorm, ScenarioParams::default());
        let b = build(ScenarioKind::PfcStorm, ScenarioParams::default());
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.truth.victim, b.truth.victim);
    }
}
