//! Declarative topology specifications for the scenario corpus.
//!
//! A [`TopologySpec`] names one member of the Clos family the six
//! `ScenarioKind` builders can run on: symmetric fat-trees (K=4/8/16), a
//! fat-tree with failed agg↔core links, an oversubscribed two-tier
//! leaf-spine, and an asymmetric-capacity Clos whose trailing pods uplink
//! at reduced bandwidth. Specs are small, serializable values — the corpus
//! matrix, the golden file, and the fuzzer's mutation plans all traffic in
//! them rather than in concrete `Topology` graphs.

use crate::fattree::{FatTreeNav, NavError};
use hawkeye_sim::{clos, leaf_spine, ClosConfig, Topology, EVAL_BANDWIDTH, EVAL_DELAY};
use std::fmt;

/// One topology the corpus can build scenarios on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TopologySpec {
    /// Symmetric fat-tree with parameter `k` (the paper's evaluation
    /// fabric at k=4).
    FatTree { k: usize },
    /// Fat-tree with the last `failed` agg↔core links absent — the
    /// link-failure variant. Failures are taken from the highest pods, so
    /// the pod-0/1/2 roles the scenarios script remain fully wired.
    FatTreeDegraded { k: usize, failed: usize },
    /// Two-tier leaf-spine; oversubscribed when
    /// `hosts_per_leaf > spines`. Leaves must be even (paired into
    /// logical pods) and `leaves/2 >= 4`.
    LeafSpine {
        leaves: usize,
        spines: usize,
        hosts_per_leaf: usize,
    },
    /// Fat-tree-shaped Clos whose last `slow_pods` pods uplink to the
    /// core at `1/slow_divisor` of the base bandwidth.
    AsymClos {
        k: usize,
        slow_pods: usize,
        slow_divisor: u64,
    },
}

impl TopologySpec {
    /// The paper's evaluation topology (fat-tree K=4).
    pub const EVAL: TopologySpec = TopologySpec::FatTree { k: 4 };

    /// The standard corpus matrix: five Clos-family fabrics plus the
    /// asymmetric variant.
    pub fn corpus() -> Vec<TopologySpec> {
        vec![
            TopologySpec::FatTree { k: 4 },
            TopologySpec::FatTree { k: 8 },
            TopologySpec::FatTree { k: 16 },
            TopologySpec::FatTreeDegraded { k: 8, failed: 4 },
            TopologySpec::LeafSpine {
                leaves: 8,
                spines: 2,
                hosts_per_leaf: 4,
            },
            TopologySpec::AsymClos {
                k: 8,
                slow_pods: 2,
                slow_divisor: 4,
            },
        ]
    }

    /// Short stable identifier used in golden-file cell coordinates and on
    /// the CLI (`--topos`).
    pub fn slug(&self) -> String {
        match self {
            TopologySpec::FatTree { k } => format!("ft{k}"),
            TopologySpec::FatTreeDegraded { k, failed } => format!("ft{k}-lf{failed}"),
            TopologySpec::LeafSpine {
                leaves,
                spines,
                hosts_per_leaf,
            } => format!("ls{leaves}x{spines}x{hosts_per_leaf}"),
            TopologySpec::AsymClos {
                k,
                slow_pods,
                slow_divisor,
            } => format!("clos{k}s{slow_pods}d{slow_divisor}"),
        }
    }

    /// Inverse of [`TopologySpec::slug`].
    pub fn parse(s: &str) -> Option<TopologySpec> {
        if let Some(rest) = s.strip_prefix("ls") {
            let mut it = rest.split('x').map(|p| p.parse::<usize>().ok());
            let (l, sp, h) = (it.next()??, it.next()??, it.next()??);
            if it.next().is_some() {
                return None;
            }
            return Some(TopologySpec::LeafSpine {
                leaves: l,
                spines: sp,
                hosts_per_leaf: h,
            });
        }
        if let Some(rest) = s.strip_prefix("clos") {
            let (k, rest) = rest.split_once('s')?;
            let (sp, div) = rest.split_once('d')?;
            return Some(TopologySpec::AsymClos {
                k: k.parse().ok()?,
                slow_pods: sp.parse().ok()?,
                slow_divisor: div.parse().ok()?,
            });
        }
        if let Some(rest) = s.strip_prefix("ft") {
            if let Some((k, failed)) = rest.split_once("-lf") {
                return Some(TopologySpec::FatTreeDegraded {
                    k: k.parse().ok()?,
                    failed: failed.parse().ok()?,
                });
            }
            return Some(TopologySpec::FatTree {
                k: rest.parse().ok()?,
            });
        }
        None
    }

    pub fn host_count(&self) -> usize {
        match *self {
            TopologySpec::FatTree { k }
            | TopologySpec::FatTreeDegraded { k, .. }
            | TopologySpec::AsymClos { k, .. } => k * k * k / 4,
            TopologySpec::LeafSpine {
                leaves,
                hosts_per_leaf,
                ..
            } => leaves * hosts_per_leaf,
        }
    }

    /// Build the concrete topology and its role navigation. Degenerate
    /// dimensions surface as typed errors, not panics, so fuzzer-mutated
    /// specs can be rejected gracefully.
    pub fn build(&self) -> Result<(Topology, FatTreeNav), NavError> {
        match *self {
            TopologySpec::FatTree { k } => {
                let cfg = Self::checked_fat_tree(k, 0, 0, 1)?;
                let topo = clos(&cfg);
                let nav = FatTreeNav::try_clos(&topo, &cfg)?;
                Ok((topo, nav))
            }
            TopologySpec::FatTreeDegraded { k, failed } => {
                let cfg = Self::checked_fat_tree(k, failed, 0, 1)?;
                let topo = clos(&cfg);
                let nav = FatTreeNav::try_clos(&topo, &cfg)?;
                Ok((topo, nav))
            }
            TopologySpec::AsymClos {
                k,
                slow_pods,
                slow_divisor,
            } => {
                let cfg = Self::checked_fat_tree(k, 0, slow_pods, slow_divisor)?;
                let topo = clos(&cfg);
                let nav = FatTreeNav::try_clos(&topo, &cfg)?;
                Ok((topo, nav))
            }
            TopologySpec::LeafSpine {
                leaves,
                spines,
                hosts_per_leaf,
            } => {
                if leaves == 0 || spines == 0 || hosts_per_leaf == 0 || !leaves.is_multiple_of(2) {
                    return Err(NavError::RoleOutOfRange {
                        role: "leaf-spine-dims",
                        index: leaves,
                        len: spines,
                    });
                }
                let topo = leaf_spine(leaves, spines, hosts_per_leaf, EVAL_BANDWIDTH, EVAL_DELAY);
                let nav = FatTreeNav::try_leaf_spine(&topo, leaves, spines, hosts_per_leaf)?;
                Ok((topo, nav))
            }
        }
    }

    fn checked_fat_tree(
        k: usize,
        failed: usize,
        slow_pods: usize,
        slow_divisor: u64,
    ) -> Result<ClosConfig, NavError> {
        if k < 2 || !k.is_multiple_of(2) {
            return Err(NavError::RoleOutOfRange {
                role: "fat-tree-k",
                index: k,
                len: k,
            });
        }
        let total_core_links = k * (k / 2) * (k / 2);
        if failed >= total_core_links || slow_pods > k || slow_divisor == 0 {
            return Err(NavError::RoleOutOfRange {
                role: "fat-tree-variant",
                index: failed.max(slow_pods),
                len: total_core_links,
            });
        }
        let mut cfg = ClosConfig::fat_tree(k, EVAL_BANDWIDTH, EVAL_DELAY);
        cfg.failed_core_links = failed;
        cfg.slow_pods = slow_pods;
        cfg.slow_divisor = slow_divisor;
        Ok(cfg)
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.slug())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_round_trip() {
        for spec in TopologySpec::corpus() {
            let slug = spec.slug();
            assert_eq!(TopologySpec::parse(&slug), Some(spec), "slug {slug}");
        }
    }

    #[test]
    fn corpus_specs_all_build() {
        for spec in TopologySpec::corpus() {
            let (topo, nav) = spec.build().unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(topo.hosts().count(), spec.host_count(), "{spec}");
            let (pods, epp, _, hpe) = nav.dims();
            assert!(pods >= 4 && epp >= 2 && hpe >= 2, "{spec}");
        }
    }

    #[test]
    fn degenerate_specs_reject_typed() {
        assert!(TopologySpec::FatTree { k: 3 }.build().is_err());
        assert!(TopologySpec::FatTree { k: 0 }.build().is_err());
        assert!(TopologySpec::FatTreeDegraded { k: 4, failed: 999 }
            .build()
            .is_err());
        assert!(TopologySpec::LeafSpine {
            leaves: 3,
            spines: 2,
            hosts_per_leaf: 2
        }
        .build()
        .is_err());
        assert!(TopologySpec::AsymClos {
            k: 8,
            slow_pods: 2,
            slow_divisor: 0
        }
        .build()
        .is_err());
    }

    #[test]
    fn serde_round_trip() {
        for spec in TopologySpec::corpus() {
            let v = serde::Serialize::to_value(&spec);
            let back: TopologySpec = serde::Deserialize::from_value(&v).unwrap();
            assert_eq!(back, spec);
        }
    }
}
