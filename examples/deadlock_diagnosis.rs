//! Fig. 1(c) case study: routing misconfiguration creates a cyclic buffer
//! dependency (CBD) in pod 0; a sub-millisecond burst then freezes it into
//! a persistent deadlock. Shows the pause-state timeline of the four ring
//! ports and the provenance-graph loop the diagnosis finds.
//!
//! Run: `cargo run --release --example deadlock_diagnosis`

use hawkeye::core::{analyze_victim_window, AnalyzerConfig, HawkeyeConfig, HawkeyeHook, Window};
use hawkeye::eval::optimal_run_config;
use hawkeye::sim::Nanos;
use hawkeye::telemetry::TelemetryConfig;
use hawkeye::workloads::{build_scenario, FatTreeNav, Scenario, ScenarioKind, ScenarioParams};

fn main() {
    let sc = build_scenario(
        ScenarioKind::InLoopDeadlock,
        ScenarioParams {
            load: 0.0,
            ..Default::default()
        },
    );
    let nav = FatTreeNav::new(&sc.topo, 4);
    let (e0, e1, a0, a1) = (
        nav.edges[0][0],
        nav.edges[0][1],
        nav.aggs[0][0],
        nav.aggs[0][1],
    );
    let ring = [
        ("e0->a0", nav.egress(&sc.topo, e0, a0)),
        ("a0->e1", nav.egress(&sc.topo, a0, e1)),
        ("e1->a1", nav.egress(&sc.topo, e1, a1)),
        ("a1->e0", nav.egress(&sc.topo, a1, e0)),
    ];

    let run = optimal_run_config(1);
    let hook = HawkeyeHook::new(
        &sc.topo,
        HawkeyeConfig {
            telemetry: TelemetryConfig {
                epochs: run.epoch,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut agent = Scenario::agent(2.0);
    agent.dedup_interval = Nanos::from_micros(400);
    let mut sim = sc.instantiate_seeded(1, agent, hook);

    println!("cyclic buffer dependency: e0 -> a0 -> e1 -> a1 -> e0 (route overrides)");
    println!(
        "burst injected at {}; ring pause states:",
        sc.truth.anomaly_at
    );
    println!("  t_us     e0->a0      a0->e1      e1->a1      a1->e0");
    for step in 1..=15u64 {
        let t = Nanos::from_micros(step * 200);
        sim.run_until(t);
        let cells: Vec<String> = ring
            .iter()
            .map(|(_, p)| {
                let sw = sim.switch(p.node);
                format!(
                    "{}q{:<4}",
                    if sw.egress_paused(p.port, t) {
                        "PAUSE "
                    } else {
                        "  -   "
                    },
                    sw.queue_pkts(p.port)
                )
            })
            .collect();
        println!("  {:<7}  {}", step * 200, cells.join("  "));
    }
    sim.run_until(sc.params.duration);

    let dets = sim.detections();
    let vdets: Vec<_> = dets
        .iter()
        .filter(|d| d.key == sc.truth.victim && d.at >= sc.truth.anomaly_at)
        .collect();
    let (first, last) = (vdets.first().expect("victim stalls"), vdets.last().unwrap());
    let analyzer = AnalyzerConfig::for_epoch_len(run.epoch.epoch_len());
    let window = Window {
        from: first.at.saturating_sub(Nanos(
            run.epoch.epoch_len().as_nanos() * analyzer.lookback_epochs,
        )),
        to: last.at + run.epoch.epoch_len(),
    };
    let (report, _, _) = analyze_victim_window(
        &sc.truth.victim,
        window,
        &sim.hook.collector.snapshots(),
        sim.topo(),
        &analyzer,
    );
    println!("\ndiagnosis: {:?}", report.anomaly);
    if let Some(lp) = &report.deadlock_loop {
        println!(
            "deadlock loop (cyclic buffer dependency): {}",
            lp.iter()
                .map(|p| format!("{p}"))
                .collect::<Vec<_>>()
                .join(" -> ")
        );
    }
    println!(
        "root-cause burst flows: {:?} (injected: {:?})",
        report
            .major_root_cause_flows(0.2)
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>(),
        sc.truth
            .culprit_flows
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
    );
}
