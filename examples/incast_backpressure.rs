//! Fig. 1(a) case study on the paper's evaluation fat-tree: micro-burst
//! incast causes PFC backpressure that victimizes an inter-pod flow that
//! never touches the congested port. Prints the provenance graph as
//! Graphviz DOT (pipe into `dot -Tpng` to render the Fig. 12(a) analog).
//!
//! Run: `cargo run --release --example incast_backpressure [--dot]`

use hawkeye::core::{analyze_victim_window, AnalyzerConfig, HawkeyeConfig, HawkeyeHook, Window};
use hawkeye::eval::optimal_run_config;
use hawkeye::sim::Nanos;
use hawkeye::telemetry::TelemetryConfig;
use hawkeye::workloads::{build_scenario, Scenario, ScenarioKind, ScenarioParams};

fn main() {
    let want_dot = std::env::args().any(|a| a == "--dot");
    let sc = build_scenario(
        ScenarioKind::MicroBurstIncast,
        ScenarioParams {
            load: 0.1,
            ..Default::default()
        },
    );
    println!("designated victim: {}", sc.truth.victim);
    println!(
        "injected culprits: {:?}",
        sc.truth
            .culprit_flows
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
    );

    let run = optimal_run_config(1);
    let hook = HawkeyeHook::new(
        &sc.topo,
        HawkeyeConfig {
            telemetry: TelemetryConfig {
                epochs: run.epoch,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut agent = Scenario::agent(2.0);
    agent.dedup_interval = Nanos::from_micros(400);
    let mut sim = sc.instantiate_seeded(1, agent, hook);
    sim.run_until(sc.params.duration);

    let dets = sim.detections();
    let vdets: Vec<_> = dets
        .iter()
        .filter(|d| d.key == sc.truth.victim && d.at >= sc.truth.anomaly_at)
        .collect();
    let (first, last) = (vdets.first().expect("detected"), vdets.last().unwrap());
    println!("victim detections: first {} last {}", first.at, last.at);

    let analyzer = AnalyzerConfig::for_epoch_len(run.epoch.epoch_len());
    let window = Window {
        from: first.at.saturating_sub(Nanos(
            run.epoch.epoch_len().as_nanos() * analyzer.lookback_epochs,
        )),
        to: last.at + run.epoch.epoch_len(),
    };
    let (report, graph, _) = analyze_victim_window(
        &sc.truth.victim,
        window,
        &sim.hook.collector.snapshots(),
        sim.topo(),
        &analyzer,
    );

    println!("\ndiagnosis: {:?}", report.anomaly);
    for path in &report.pfc_paths {
        println!(
            "PFC path: {}",
            path.iter()
                .map(|p| format!("{p}"))
                .collect::<Vec<_>>()
                .join(" -> ")
        );
    }
    println!(
        "major root-cause flows: {:?}",
        report
            .major_root_cause_flows(0.2)
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "spreading flows (paused at 2+ hops): {:?}",
        report
            .spreading_flows
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
    );
    if want_dot {
        println!("\n{}", graph.to_dot(sim.topo()));
    } else {
        println!("\n(re-run with --dot for the Graphviz provenance graph)");
    }
}
