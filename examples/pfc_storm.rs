//! Fig. 1(b) case study: a buggy NIC floods PAUSE frames and freezes
//! everything upstream of it ("PFC storm"). Sweeps the injection duration
//! to show how long the storm blocks the victim, then diagnoses it.
//!
//! Run: `cargo run --release --example pfc_storm`

use hawkeye::core::{analyze_victim_window, AnalyzerConfig, HawkeyeConfig, HawkeyeHook, Window};
use hawkeye::eval::optimal_run_config;
use hawkeye::sim::{Nanos, NullHook, PfcInjectorConfig, SimConfig, Simulator};
use hawkeye::telemetry::TelemetryConfig;
use hawkeye::workloads::{build_scenario, FatTreeNav, Scenario, ScenarioKind, ScenarioParams};

fn main() {
    // Duration sweep: how long does the victim stall for each injection
    // length? (The paper: storms "present different durations and numbers
    // of paused links".)
    println!("injection duration sweep (victim = inter-pod flow into the storming host):");
    println!("  inject_us  victim_done  pauses_seen");
    for inject_us in [100u64, 300, 800, 1500] {
        let sc = build_scenario(
            ScenarioKind::PfcStorm,
            ScenarioParams {
                load: 0.0,
                ..Default::default()
            },
        );
        let mut sim: Simulator<NullHook> =
            sc.instantiate(SimConfig::default(), Scenario::agent(2.0), NullHook);
        // Override the injector duration.
        let nav = FatTreeNav::new(sim.topo(), 4);
        let h_t = nav.hosts[0][0][0];
        sim.set_pfc_injector(
            h_t,
            PfcInjectorConfig {
                start: sc.truth.anomaly_at,
                stop: sc.truth.anomaly_at + Nanos::from_micros(inject_us),
                period: Nanos::from_micros(100),
            },
        );
        sim.run_until(sc.params.duration);
        let meta = sim
            .flows()
            .iter()
            .find(|f| f.key == sc.truth.victim)
            .unwrap();
        let done = sim
            .host(sc.truth.victim.src)
            .flow_by_id(meta.id)
            .is_some_and(|h| h.is_done());
        let pauses = sim.sum_switch_stats(|s| s.pfc_pause_recv);
        println!("  {inject_us:<9}  {done:<11}  {pauses}");
    }

    // Full diagnosis of the scripted storm.
    let sc = build_scenario(
        ScenarioKind::PfcStorm,
        ScenarioParams {
            load: 0.1,
            ..Default::default()
        },
    );
    let run = optimal_run_config(1);
    let hook = HawkeyeHook::new(
        &sc.topo,
        HawkeyeConfig {
            telemetry: TelemetryConfig {
                epochs: run.epoch,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut agent = Scenario::agent(2.0);
    agent.dedup_interval = Nanos::from_micros(400);
    let mut sim = sc.instantiate_seeded(1, agent, hook);
    sim.run_until(sc.params.duration);
    let dets = sim.detections();
    let vdets: Vec<_> = dets
        .iter()
        .filter(|d| d.key == sc.truth.victim && d.at >= sc.truth.anomaly_at)
        .collect();
    let (first, last) = (
        vdets.first().expect("storm victim detected"),
        vdets.last().unwrap(),
    );
    let analyzer = AnalyzerConfig::for_epoch_len(run.epoch.epoch_len());
    let window = Window {
        from: first.at.saturating_sub(Nanos(
            run.epoch.epoch_len().as_nanos() * analyzer.lookback_epochs,
        )),
        to: last.at + run.epoch.epoch_len(),
    };
    let (report, _, _) = analyze_victim_window(
        &sc.truth.victim,
        window,
        &sim.hook.collector.snapshots(),
        sim.topo(),
        &analyzer,
    );
    println!("\ndiagnosis: {:?}", report.anomaly);
    println!(
        "injection blamed on host(s): {:?} (injected: {:?})",
        report.injection_peers(),
        sc.truth.injection_host
    );
    for path in &report.pfc_paths {
        println!(
            "PFC path: {}",
            path.iter()
                .map(|p| format!("{p}"))
                .collect::<Vec<_>>()
                .join(" -> ")
        );
    }
}
