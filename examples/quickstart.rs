//! Quickstart: the whole Hawkeye pipeline on a 3-switch chain in ~60 lines.
//!
//! 1. Build a topology and instrument every switch with the Hawkeye hook
//!    (PFC-aware telemetry + polling-packet forwarding).
//! 2. Run an incast that causes PFC backpressure onto an innocent victim.
//! 3. The victim's host agent detects the RTT anomaly and emits a polling
//!    packet; switches trace the PFC causality and upload telemetry.
//! 4. The analyzer builds the provenance graph and names the culprits.
//!
//! Run: `cargo run --release --example quickstart`

use hawkeye::core::{analyze_detection, AnalyzerConfig, HawkeyeConfig, HawkeyeHook, RootCause};
use hawkeye::sim::{chain, AgentConfig, FlowKey, Nanos, SimConfig, Simulator};
use hawkeye::sim::{EVAL_BANDWIDTH, EVAL_DELAY};
use hawkeye::telemetry::{EpochConfig, TelemetryConfig};

fn main() {
    // Three switches in a chain, five hosts each, 100 Gbps / 2 us links.
    let topo = chain(3, 5, EVAL_BANDWIDTH, EVAL_DELAY);
    let hosts: Vec<_> = topo.hosts().collect();

    // Instrument with ~131 us telemetry epochs.
    let epoch = EpochConfig::for_epoch_len(Nanos::from_micros(100), 2);
    let hook = HawkeyeHook::new(
        &topo,
        HawkeyeConfig {
            telemetry: TelemetryConfig {
                epochs: epoch,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut sim = Simulator::new(topo, SimConfig::default(), hook);

    // Host detection agents: alarm at 3x the unloaded RTT.
    sim.enable_agents(AgentConfig {
        rtt_threshold_factor: 3.0,
        base_rtt: Nanos::from_micros(15),
        check_interval: Nanos::from_micros(50),
        dedup_interval: Nanos::from_millis(2),
        periodic_probe: None,
        retry: None,
    });

    // The victim: a long flow crossing both inter-switch links.
    let victim = FlowKey::roce(hosts[0], hosts[14], 100);
    sim.add_flow(victim, 20_000_000, Nanos::ZERO);
    // Light through-traffic toward the soon-to-be-congested port.
    for i in 0..40u64 {
        let key = FlowKey::roce(hosts[1], hosts[10], 300 + i as u16);
        sim.add_flow(key, 64_000, Nanos::from_micros(700 + 15 * i));
    }
    // The culprits: synchronized bursts into h10 from its own rack.
    for i in 0..3u16 {
        let key = FlowKey::roce(hosts[11 + i as usize], hosts[10], 200 + i);
        sim.add_flow(key, 2_000_000, Nanos::from_micros(800));
    }

    sim.run_until(Nanos::from_millis(3));

    // The agent detected the victim; diagnose it.
    let det = sim
        .detections()
        .into_iter()
        .find(|d| d.key == victim)
        .expect("victim detected");
    println!(
        "victim {} detected at {} (observed RTT {})",
        det.key, det.at, det.observed_rtt
    );

    let snapshots = sim.hook.collector.snapshots();
    println!(
        "collected telemetry from {} switches ({} bytes after zero-filtering)",
        sim.hook.collector.switch_count(),
        sim.hook.collector.total_bytes()
    );

    let (report, _graph, _agg) = analyze_detection(
        &det,
        &snapshots,
        sim.topo(),
        &AnalyzerConfig::for_epoch_len(epoch.epoch_len()),
    );
    println!("\nDIAGNOSIS: {:?}", report.anomaly);
    for path in &report.pfc_paths {
        let p: Vec<String> = path.iter().map(|x| x.to_string()).collect();
        println!("  PFC spreading path: {}", p.join(" -> "));
    }
    for rc in &report.root_causes {
        match rc {
            RootCause::FlowContention { port, flows } => {
                println!("  root cause: flow contention at {port}");
                for (k, w) in flows.iter().take(5) {
                    println!("    contributor {k} (weight {w:.1})");
                }
            }
            RootCause::HostPfcInjection { port, peer } => {
                println!("  root cause: PFC injection at {port} from host {peer}");
            }
        }
    }
    println!(
        "  burst flows: {:?}",
        report
            .burst_flows
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
    );
}
