//! Run every anomaly scenario through the full Hawkeye pipeline and print
//! the verdicts — a one-command health check of the reproduction.
//!
//! Usage: `cargo run --release --example scenario_matrix [load] [seed]`

use hawkeye::eval::{run_hawkeye, RunConfig, ScoreConfig};
use hawkeye::workloads::{build_scenario, ScenarioKind, ScenarioParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let load: f64 = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(0.0);
    let seed: u64 = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(1);
    for kind in ScenarioKind::ALL {
        let sc = build_scenario(
            kind,
            ScenarioParams {
                load,
                seed,
                ..Default::default()
            },
        );
        let out = run_hawkeye(&sc, &RunConfig::default(), &ScoreConfig::default());
        println!("== {} ==", kind.name());
        println!(
            "  detection: {:?}",
            out.detection.map(|d| d.at.as_micros_f64())
        );
        println!("  verdict: {:?}", out.verdict);
        if let Some(r) = &out.report {
            println!(
                "  diagnosed: {:?}  loop={:?}",
                r.anomaly,
                r.deadlock_loop.as_ref().map(|l| l.len())
            );
            println!(
                "  majors: {:?}  truth: {:?}",
                r.major_root_cause_flows(0.1)
                    .iter()
                    .map(|k| (k.src.0, k.src_port))
                    .collect::<Vec<_>>(),
                sc.truth
                    .culprit_flows
                    .iter()
                    .map(|k| (k.src.0, k.src_port))
                    .collect::<Vec<_>>()
            );
            println!(
                "  inj peers: {:?} truth {:?}",
                r.injection_peers(),
                sc.truth.injection_host
            );
            println!(
                "  paths: {:?}",
                r.pfc_paths.iter().map(|p| p.len()).collect::<Vec<_>>()
            );
            for rc in &r.root_causes {
                match rc {
                    hawkeye::core::RootCause::FlowContention { port, flows } => println!(
                        "    RC contention at {}: {:?}",
                        port,
                        flows
                            .iter()
                            .map(|(k, w)| (k.src.0, k.src_port, (*w * 10.0).round() / 10.0))
                            .collect::<Vec<_>>()
                    ),
                    hawkeye::core::RootCause::HostPfcInjection { port, peer } => {
                        println!("    RC injection at {} peer {}", port, peer)
                    }
                }
            }
        }
        println!(
            "  collected {} switches; causal {}/{}; bytes {}",
            out.collected_switches.len(),
            out.causal_covered,
            out.causal_total,
            out.collected_bytes
        );
    }
}
