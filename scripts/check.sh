#!/usr/bin/env bash
# Full pre-merge gate: build, tests, formatting, lints.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Smokes below background daemons; if an assertion fails mid-smoke the
# script must not leave them running (an orphan holding our stdout pipe
# open hangs any caller that waits for EOF).
trap 'jobs -p | xargs -r kill -9 2>/dev/null || true' EXIT

echo "==> cargo build --release --workspace"
# --workspace matters: the root manifest is a package, so a bare build
# would skip the hawkeye-cli binary every smoke below shells out to.
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> chaos smoke (20% fault rate, 1 trial, jobs=2)"
# A tiny fault-injection sweep through the release CLI: must finish without
# a panic and must report at least one degraded/inconclusive verdict, or
# the degraded-telemetry path has silently stopped being exercised.
chaos_out=$(mktemp)
./target/release/hawkeye chaos --rates 0.0,0.2 --trials 1 --jobs 2 \
  --json --out "$chaos_out" > /dev/null
python3 - "$chaos_out" <<'EOF'
import json, sys
cells = json.load(open(sys.argv[1]))["chaos"]
faulted = [c for c in cells if c["rate"] > 0]
assert faulted, "no faulted cell in sweep"
assert any(c["degraded"] + c["inconclusive"] + c["errors"] > 0 for c in faulted), \
    "20% fault rate produced no degraded/inconclusive verdict and no typed error"
assert all(c["faults_injected"] > 0 for c in faulted), "no faults injected"
zero = [c for c in cells if c["rate"] == 0]
assert all(c["faults_injected"] == 0 for c in zero), "rate 0 injected faults"
print("chaos smoke ok:", {c["rate"]: c["degraded"] + c["inconclusive"] for c in cells})
EOF
rm -f "$chaos_out"

echo "==> serve smoke (daemon on unix socket, replay incast)"
# End-to-end online diagnosis through the release CLI: daemon on a unix
# socket, incast replay streamed over it, served verdict must be Correct
# and byte-identical (label/culprits/confidence) to the one-shot path,
# clean shutdown with exit 0 — all inside a hard timeout.
serve_sock=$(mktemp -u /tmp/hawkeye-serve-XXXXXX.sock)
serve_out=$(mktemp)
timeout 120 ./target/release/hawkeye serve --replay incast \
  --socket "$serve_sock" --json > "$serve_out"
python3 - "$serve_out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["verdict"] == "Correct", f"served verdict {doc['verdict']!r}"
assert doc["parity"] is True, "served diagnosis diverged from one-shot"
assert doc["epochs_streamed"] > 0, "no epochs streamed to the daemon"
assert doc["epochs_shed"] == 0, "fault-free replay shed epochs"
print("serve smoke ok:", doc["verdict"], f"({doc['epochs_streamed']} epochs)")
EOF
rm -f "$serve_out"
test ! -e "$serve_sock" || { echo "stale socket file left behind"; exit 1; }

echo "==> metrics smoke (observability surface over the wire)"
# Serve-plane observability through the release CLI: replay over a unix
# socket, then assert the Metrics wire op saw the traffic (ingest counter,
# Diagnose latency histogram), the flight ring stayed warning-free on a
# fault-free run, and the Diagnose verdict's audit record round-tripped
# over the Explain op with its evidence and stage timings intact.
metrics_sock=$(mktemp -u /tmp/hawkeye-metrics-XXXXXX.sock)
metrics_out=$(mktemp)
timeout 120 ./target/release/hawkeye serve --replay incast \
  --socket "$metrics_sock" --json > "$metrics_out"
python3 - "$metrics_out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
counters = {c["key"]: c["value"] for c in doc["metrics"]["counters"]}
assert counters["epochs_ingested"] > 0, "metrics op reported no ingested epochs"
assert counters["ingest_shed"] == 0, "fault-free replay shed epochs"
hists = {h["key"]: h for h in doc["metrics"]["histograms"]}
assert hists["op_ingest_ns"]["count"] == doc["epochs_streamed"], \
    "one ingest latency sample per streamed snapshot"
assert doc["diagnose_p99_ns"] > 0, "Diagnose p99 missing or zero"
assert hists["op_diagnose_ns"]["count"] >= 1, "diagnose latency never recorded"
warnings = [e for e in doc["flight"] if e.get("kind") == "warning"]
assert not warnings, f"fault-free replay raised flight warnings: {warnings}"
ex = doc["explain"]
assert ex["signature_row"] == "microburst_incast", f"wrong row: {ex['signature_row']}"
assert ex["confidence"] == "complete", f"confidence {ex['confidence']!r}"
assert ex["window_from_ns"] < ex["window_to_ns"], "empty diagnosis window"
assert ex["contributing_epochs"] > 0 and ex["contributing_switches"], \
    "audit record names no evidence"
assert ex["stage_collect_ns"] > 0 and ex["stage_graph_ns"] > 0, \
    "audit record has zero stage timings"
print("metrics smoke ok:", counters["epochs_ingested"], "epochs,",
      "diagnose p99", doc["diagnose_p99_ns"], "ns, verdict #%d" % ex["seq"])
EOF
rm -f "$metrics_out"
test ! -e "$metrics_sock" || { echo "stale socket file left behind"; exit 1; }

echo "==> retention smoke (tiny ring budget, compaction + engine retirement)"
# Long-running-serve retention through the release CLI: a ring budget far
# below the replay's epoch count forces store eviction, snapshot
# compaction and horizon-driven engine retirement — while the served
# verdict must stay Correct and at parity (diagnosis reads the raw ring
# only) and the victim's history must span both fidelity tiers.
retention_out=$(mktemp)
timeout 120 ./target/release/hawkeye serve --replay incast \
  --epoch-budget 2 --history --json > "$retention_out"
python3 - "$retention_out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
d = doc["daemon"]
assert doc["verdict"] == "Correct", f"verdict {doc['verdict']!r} under tight budget"
assert doc["parity"] is True, "compaction changed the served diagnosis"
assert d["store_epochs_held"] <= 2 * d["store_switches"], \
    f"raw rings over budget: {d['store_epochs_held']} > 2x{d['store_switches']}"
assert d["store_epochs_compacted_held"] > 0, "eviction never compacted an epoch"
assert d["engine_epochs_retired_total"] > 0, "engine retirement never fired"
hist = doc["history"]
assert {r["fidelity"] for r in hist} == {"raw", "compacted"}, \
    f"history missing a fidelity tier: {sorted({r['fidelity'] for r in hist})}"
print("retention smoke ok:", d["store_epochs_held"], "raw epochs held,",
      d["store_epochs_compacted_held"], "compacted,",
      d["engine_epochs_retired_total"], "retired")
EOF
rm -f "$retention_out"

echo "==> backpressure smoke (batch frames, slow shard, tight queue)"
# Ingest-path overload behavior through the release CLI: batched frames
# into a daemon whose shard workers are artificially slowed behind a
# 4-deep queue. Under the default backpressure policy the slow shard must
# stall the sender's credit window instead of shedding — zero sheds, full
# parity with the one-shot diagnosis, and the batch path actually taken.
bp_out=$(mktemp)
timeout 120 ./target/release/hawkeye serve --replay incast \
  --batch 8 --slow-shard-us 200 --queue-depth 4 --json > "$bp_out"
python3 - "$bp_out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
counters = {c["key"]: c["value"] for c in doc["metrics"]["counters"]}
assert doc["verdict"] == "Correct", f"verdict {doc['verdict']!r} under backpressure"
assert doc["parity"] is True, "backpressure changed the served diagnosis"
assert doc["epochs_streamed"] > 0, "no epochs streamed to the daemon"
assert doc["epochs_shed"] == 0, "backpressure policy shed epochs"
assert counters["ingest_shed"] == 0, "daemon shed under backpressure policy"
assert counters["ingest_batches"] > 0, "batch frames never taken"
print("backpressure smoke ok:", doc["epochs_streamed"], "epochs,",
      counters["ingest_batches"], "batch frames, 0 shed")
EOF
rm -f "$bp_out"

echo "==> bench smoke (1 sample, tiny budget, jobs=2)"
# Exercises the micro-bench harness end to end — queue speedup numbers,
# overhead check, sweep wall-clock, BENCH_2.json write — at a budget small
# enough for CI; the recorded numbers are meaningless at this budget, so
# restore BENCH_2.json afterwards.
HAWKEYE_BENCH_SAMPLES=1 HAWKEYE_BENCH_BUDGET_MS=5 HAWKEYE_TRIALS=1 \
  HAWKEYE_LOAD=0.05 HAWKEYE_JOBS=2 \
  cargo bench -p hawkeye-bench --bench micro
git checkout -- BENCH_2.json 2>/dev/null || true

echo "==> ingest bench smoke (1 sample, tiny budget)"
# Exercises the ingest hot-path bench end to end — deferred-vs-inline
# append, the deferred==inline fold equivalence check, the daemon batch
# sweep, BENCH_7.json write — at a CI-sized budget; the recorded numbers
# are meaningless at this budget, so restore BENCH_7.json afterwards.
HAWKEYE_BENCH_SAMPLES=1 HAWKEYE_BENCH_BUDGET_MS=5 \
  cargo bench -p hawkeye-bench --bench ingest
git checkout -- BENCH_7.json 2>/dev/null || true

echo "==> crash-recovery smoke (durable daemon survives kill -9)"
# The durability pitch, end to end through the release CLI: stream a replay
# into a foreground durable daemon, SIGKILL it mid-life, restart it on the
# same log directory, and diagnose with --query-only (nothing re-streamed:
# the daemon serves purely recovered state). The recovered verdict, served
# report and flow history must be byte-identical to a durability-off
# reference run, and a final SIGTERM must exit 0 and remove the socket.
wal_dir=$(mktemp -d /tmp/hawkeye-wal-XXXXXX)
cr_sock=$(mktemp -u /tmp/hawkeye-crash-XXXXXX.sock)
ref_out=$(mktemp); s1_out=$(mktemp); s2_out=$(mktemp); d2_err=$(mktemp)
timeout 120 ./target/release/hawkeye serve --replay incast --history --json \
  > "$ref_out"
./target/release/hawkeye serve --socket "$cr_sock" --durable "$wal_dir" &
cr_pid=$!
for _ in $(seq 100); do [ -S "$cr_sock" ] && break; sleep 0.1; done
test -S "$cr_sock" || { echo "durable daemon never bound its socket"; exit 1; }
timeout 120 ./target/release/hawkeye serve --replay incast --connect \
  --socket "$cr_sock" --stream-only --json > "$s1_out"
python3 - "$s1_out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["epochs_streamed"] > 0, "nothing streamed before the crash"
assert doc["epochs_shed"] == 0, "fault-free replay shed epochs"
EOF
kill -9 "$cr_pid"
wait "$cr_pid" 2>/dev/null || true
rm -f "$cr_sock"
./target/release/hawkeye serve --socket "$cr_sock" --durable "$wal_dir" \
  2> "$d2_err" &
cr_pid=$!
for _ in $(seq 100); do [ -S "$cr_sock" ] && break; sleep 0.1; done
test -S "$cr_sock" || { cat "$d2_err"; echo "recovered daemon never bound its socket"; exit 1; }
# The daemon binds its socket before the CLI prints the recovery line,
# so poll briefly rather than racing a single grep against its stderr.
for _ in $(seq 100); do grep -q "hawkeye: recovered" "$d2_err" && break; sleep 0.1; done
grep -q "hawkeye: recovered" "$d2_err" || { cat "$d2_err"; echo "restart did not report recovery"; exit 1; }
timeout 120 ./target/release/hawkeye serve --replay incast --connect \
  --socket "$cr_sock" --query-only --history --json > "$s2_out"
python3 - "$ref_out" "$s2_out" <<'EOF'
import json, sys
ref, rec = (json.load(open(p)) for p in sys.argv[1:3])
assert rec["verdict"] == "Correct", f"recovered verdict {rec['verdict']!r}"
assert rec["parity"] is True, "recovered diagnosis diverged from one-shot"
assert rec["served"] == ref["served"], \
    "served report after kill -9 differs from durability-off reference"
assert rec["history"] == ref["history"], \
    "flow history after kill -9 differs from durability-off reference"
print("crash-recovery smoke ok: verdict", rec["verdict"] + ",",
      len(rec["history"]), "history rows byte-identical after kill -9")
EOF
kill -TERM "$cr_pid"
wait "$cr_pid" || { echo "recovered daemon exited nonzero on SIGTERM"; exit 1; }
test ! -e "$cr_sock" || { echo "stale socket file left behind"; exit 1; }
rm -rf "$wal_dir"; rm -f "$ref_out" "$s1_out" "$s2_out" "$d2_err"

echo "==> wal bench smoke (1 sample, tiny budget)"
# Exercises the durability bench end to end — paired daemon passes with and
# without the evidence log, the recovery replay measurement, BENCH_8.json
# write — at a CI-sized budget; the recorded numbers are meaningless at
# this budget, so restore BENCH_8.json afterwards.
HAWKEYE_BENCH_SAMPLES=1 HAWKEYE_BENCH_BUDGET_MS=5 \
  cargo bench -p hawkeye-bench --bench wal
git checkout -- BENCH_8.json 2>/dev/null || true

echo "==> fleet smoke (3 sharded daemons behind a front-end, verdict parity)"
# Multi-daemon serving through the release CLI: three `serve --shard`
# daemons on unix sockets behind a `hawkeye front` router, the incast
# replay streamed through the front, and the served verdict required to
# be byte-identical to a monolithic daemon's over the same replay — the
# shard cut must be invisible to clients. Clean SIGTERM teardown all
# around, sockets removed.
fleet_dir=$(mktemp -d /tmp/hawkeye-fleet-XXXXXX)
fleet_ref=$(mktemp); fleet_out=$(mktemp)
timeout 120 ./target/release/hawkeye serve --replay incast --json > "$fleet_ref"
fleet_pids=()
for i in 0 1 2; do
  case $i in
    0) range="0..8" ;;
    1) range="8..16" ;;
    2) range="16..1024" ;;
  esac
  ./target/release/hawkeye serve --socket "$fleet_dir/shard$i.sock" \
    --shard "$range" --map-epoch 1 &
  fleet_pids+=($!)
done
for i in 0 1 2; do
  for _ in $(seq 100); do [ -S "$fleet_dir/shard$i.sock" ] && break; sleep 0.1; done
  test -S "$fleet_dir/shard$i.sock" || { echo "shard $i never bound its socket"; exit 1; }
done
cat > "$fleet_dir/map" <<EOF
epoch 1
0..8     unix:$fleet_dir/shard0.sock
8..16    unix:$fleet_dir/shard1.sock
16..1024 unix:$fleet_dir/shard2.sock
EOF
./target/release/hawkeye front --map "$fleet_dir/map" \
  --socket "$fleet_dir/front.sock" &
front_pid=$!
for _ in $(seq 100); do [ -S "$fleet_dir/front.sock" ] && break; sleep 0.1; done
test -S "$fleet_dir/front.sock" || { echo "front never bound its socket"; exit 1; }
timeout 120 ./target/release/hawkeye serve --replay incast --connect \
  --socket "$fleet_dir/front.sock" --json > "$fleet_out"
python3 - "$fleet_ref" "$fleet_out" <<'EOF'
import json, sys
ref, fleet = (json.load(open(p)) for p in sys.argv[1:3])
assert fleet["verdict"] == "Correct", f"fleet verdict {fleet['verdict']!r}"
assert fleet["parity"] is True, "fleet diagnosis diverged from one-shot"
assert fleet["epochs_streamed"] > 0, "nothing streamed through the front"
assert fleet["epochs_shed"] == 0, "healthy fleet shed epochs"
assert fleet["served"] == ref["served"], \
    "verdict through 3-shard fleet differs from monolithic daemon"
print("fleet smoke ok:", fleet["verdict"] + ",",
      fleet["epochs_streamed"], "epochs routed, verdict byte-identical")
EOF
kill -TERM "$front_pid"
wait "$front_pid" || { echo "front exited nonzero on SIGTERM"; exit 1; }
test ! -e "$fleet_dir/front.sock" || { echo "stale front socket left behind"; exit 1; }
for pid in "${fleet_pids[@]}"; do
  kill -TERM "$pid"
  wait "$pid" || { echo "shard daemon exited nonzero on SIGTERM"; exit 1; }
done
rm -rf "$fleet_dir"; rm -f "$fleet_ref" "$fleet_out"

echo "==> cluster bench smoke (1 sample, tiny budget)"
# Exercises the fleet bench end to end — shard-count sweep {1,2,3} through
# a live front-end, the cross-fleet verdict-parity check, BENCH_9.json
# write — at a CI-sized budget; the recorded numbers are meaningless at
# this budget, so restore BENCH_9.json afterwards.
HAWKEYE_BENCH_SAMPLES=1 HAWKEYE_BENCH_BUDGET_MS=5 \
  cargo bench -p hawkeye-bench --bench cluster
git checkout -- BENCH_9.json 2>/dev/null || true

echo "==> corpus smoke (ft4 + leaf-spine slice vs committed golden)"
# A cheap slice of the scenario corpus checked against the committed
# golden pins through the release CLI: any verdict drift on these cells
# exits nonzero with typed cell coordinates. The slice stays small (2
# topologies x 6 scenarios x 1 seed) so the gate is fast; the full 108-
# cell matrix is `hawkeye corpus` with no flags.
corpus_out=$(mktemp)
./target/release/hawkeye corpus --topos ft4,ls8x2x4 --seeds 1 --jobs 2 \
  --json > "$corpus_out"
python3 - "$corpus_out" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["cells"] == 12, f"expected 12 cells in the slice, got {doc['cells']}"
assert doc["subset"] is True, "slice did not run in subset mode"
assert doc["diffs"] == [], "corpus drifted from golden:\n" + "\n".join(doc["diffs"])
print("corpus smoke ok:", doc["cells"], "cells match golden")
EOF
rm -f "$corpus_out"

echo "==> fuzz smoke (24 mutations on ft4, banked repros re-verify)"
# The disagreement fuzzer end to end at CI size: a small deterministic
# hunt must complete panic-free with every attempted case accounted for
# (run or rejected as a degenerate topology), and the repros banked by
# the full-size hunt (tests/corpus_bank.json) must still reproduce their
# pinned wrong verdicts when replayed — fuzzer-found regressions are
# golden cells too.
fuzz_out=$(mktemp); fuzz_bank=$(mktemp)
./target/release/hawkeye fuzz --budget 24 --base-topo ft4 --seed 7 \
  --bank "$fuzz_bank" --json > "$fuzz_out"
python3 - "$fuzz_out" "$fuzz_bank" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["runs"] + doc["rejected"] == 24, \
    f"budget not accounted: {doc['runs']} runs + {doc['rejected']} rejected != 24"
assert doc["runs"] > 0, "every mutation was rejected; hunt never ran"
assert doc["reverify_failures"] == 0, "a minimized repro failed re-verification"
bank = json.load(open(sys.argv[2]))
assert bank["version"] == 1 and len(bank["repros"]) == len(doc["banked"]), \
    "bank file disagrees with the report"
print("fuzz smoke ok:", doc["runs"], "runs,", doc["rejected"], "rejected,",
      len(doc["banked"]), "banked")
EOF
rm -f "$fuzz_out" "$fuzz_bank"
cargo test -q -p hawkeye-eval --release --test corpus_bank_reverify

echo "==> all checks passed"
