#!/usr/bin/env bash
# Full pre-merge gate: build, tests, formatting, lints.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench smoke (1 sample, tiny budget, jobs=2)"
# Exercises the micro-bench harness end to end — queue speedup numbers,
# overhead check, sweep wall-clock, BENCH_2.json write — at a budget small
# enough for CI; the recorded numbers are meaningless at this budget, so
# restore BENCH_2.json afterwards.
HAWKEYE_BENCH_SAMPLES=1 HAWKEYE_BENCH_BUDGET_MS=5 HAWKEYE_TRIALS=1 \
  HAWKEYE_LOAD=0.05 HAWKEYE_JOBS=2 \
  cargo bench -p hawkeye-bench --bench micro
git checkout -- BENCH_2.json 2>/dev/null || true

echo "==> all checks passed"
