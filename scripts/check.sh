#!/usr/bin/env bash
# Full pre-merge gate: build, tests, formatting, lints.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> all checks passed"
