//! # hawkeye
//!
//! Umbrella crate for the Hawkeye (SIGCOMM 2025) reproduction: re-exports
//! the simulator substrate, the telemetry layer, the core diagnosis system,
//! baselines, workloads and evaluation harness. See `README.md` for the
//! quickstart and `DESIGN.md` for the system inventory.

pub use hawkeye_baselines as baselines;
pub use hawkeye_core as core;
pub use hawkeye_eval as eval;
pub use hawkeye_obs as obs;
pub use hawkeye_sim as sim;
pub use hawkeye_telemetry as telemetry;
pub use hawkeye_tofino as tofino;
pub use hawkeye_workloads as workloads;
