//! Cyclic-buffer-dependency prevention analysis against the deadlock
//! scenarios: the misconfigured routing is flagged *before* any packet
//! flows (the §3.5.2 prevention/resolution use case).

use hawkeye::core::BufferDependencyGraph;
use hawkeye::sim::FlowKey;
use hawkeye::workloads::{build_scenario, ScenarioKind, ScenarioParams};

#[test]
fn deadlock_scenario_routing_contains_the_cbd() {
    let sc = build_scenario(
        ScenarioKind::InLoopDeadlock,
        ScenarioParams {
            load: 0.0,
            ..Default::default()
        },
    );
    let flows: Vec<FlowKey> = sc.flows.iter().map(|f| f.key).collect();
    let g = BufferDependencyGraph::build(&sc.topo, &flows);
    let cycles = g.find_cycles();
    assert!(
        !cycles.is_empty(),
        "the misconfigured routing admits deadlock"
    );
    let cyc = &cycles[0];
    assert_eq!(cyc.len(), 4);
    assert_eq!(g.cycle_switches(cyc).len(), 4);
    // The ring flows Q, P, S create it.
    let fs = g.cycle_flows(cyc);
    for sp in [500u16, 501, 502] {
        assert!(
            fs.iter().any(|k| k.src_port == sp),
            "ring flow {sp} missing from {fs:?}"
        );
    }
}

#[test]
fn non_deadlock_scenarios_are_cbd_free() {
    for kind in [
        ScenarioKind::MicroBurstIncast,
        ScenarioKind::PfcStorm,
        ScenarioKind::NormalContention,
    ] {
        let sc = build_scenario(
            kind,
            ScenarioParams {
                load: 0.2,
                ..Default::default()
            },
        );
        let flows: Vec<FlowKey> = sc.flows.iter().map(|f| f.key).collect();
        let g = BufferDependencyGraph::build(&sc.topo, &flows);
        assert!(
            g.find_cycles().is_empty(),
            "{:?} routing must be CBD-free",
            kind
        );
    }
}

#[test]
fn cbd_detection_is_deterministic() {
    let mk = || {
        let sc = build_scenario(
            ScenarioKind::OutOfLoopDeadlockInjection,
            ScenarioParams {
                load: 0.0,
                ..Default::default()
            },
        );
        let flows: Vec<FlowKey> = sc.flows.iter().map(|f| f.key).collect();
        BufferDependencyGraph::build(&sc.topo, &flows).find_cycles()
    };
    assert_eq!(mk(), mk());
}
