//! End-to-end deadlock scenarios on the evaluation fat-tree: the cyclic
//! buffer dependency forms, freezes, is traced by polling packets, and the
//! diagnosis identifies the loop and its initiator.

use hawkeye::core::{AnomalyType, RootCause};
use hawkeye::eval::{optimal_run_config, run_hawkeye, ScoreConfig, Verdict};
use hawkeye::workloads::{build_scenario, FatTreeNav, ScenarioKind, ScenarioParams};

fn run(kind: ScenarioKind) -> (hawkeye::workloads::Scenario, hawkeye::eval::RunOutcome) {
    let sc = build_scenario(
        kind,
        ScenarioParams {
            load: 0.0,
            ..Default::default()
        },
    );
    let out = run_hawkeye(&sc, &optimal_run_config(1), &ScoreConfig::default());
    (sc, out)
}

#[test]
fn in_loop_deadlock_full_pipeline() {
    let (sc, out) = run(ScenarioKind::InLoopDeadlock);
    assert_eq!(
        out.verdict,
        Some(Verdict::Correct),
        "report: {:#?}",
        out.report
    );
    let report = out.report.unwrap();
    assert_eq!(report.anomaly, AnomalyType::InLoopDeadlock);

    // The reported loop is exactly the pod-0 CBD ring.
    let lp = report.deadlock_loop.clone().expect("loop found");
    assert_eq!(lp.len(), 4);
    let nav = FatTreeNav::new(&sc.topo, 4);
    let ring = [
        nav.egress(&sc.topo, nav.edges[0][0], nav.aggs[0][0]),
        nav.egress(&sc.topo, nav.aggs[0][0], nav.edges[0][1]),
        nav.egress(&sc.topo, nav.edges[0][1], nav.aggs[0][1]),
        nav.egress(&sc.topo, nav.aggs[0][1], nav.edges[0][0]),
    ];
    for p in &ring {
        assert!(lp.contains(p), "{p} missing from loop {lp:?}");
    }

    // The trigger bursts are the named culprits.
    let majors = report.major_root_cause_flows(0.2);
    for c in &sc.truth.culprit_flows {
        assert!(majors.contains(c), "culprit {c} missing from {majors:?}");
    }
    // Every causally relevant switch was collected.
    assert_eq!(out.causal_covered, out.causal_total);
}

#[test]
fn out_of_loop_injection_full_pipeline() {
    let (sc, out) = run(ScenarioKind::OutOfLoopDeadlockInjection);
    assert_eq!(
        out.verdict,
        Some(Verdict::Correct),
        "report: {:#?}",
        out.report
    );
    let report = out.report.unwrap();
    assert_eq!(report.anomaly, AnomalyType::OutOfLoopDeadlockInjection);
    assert!(report.deadlock_loop.is_some());
    assert_eq!(
        report.injection_peers(),
        vec![sc.truth.injection_host.unwrap()]
    );
    // The injection root names the host-facing egress.
    assert!(report.root_causes.iter().any(|rc| matches!(
        rc,
        RootCause::HostPfcInjection { port, .. } if Some(*port) == sc.truth.initial_port
    )));
}

#[test]
fn out_of_loop_contention_full_pipeline() {
    let (sc, out) = run(ScenarioKind::OutOfLoopDeadlockContention);
    assert_eq!(
        out.verdict,
        Some(Verdict::Correct),
        "report: {:#?}",
        out.report
    );
    let report = out.report.unwrap();
    assert_eq!(report.anomaly, AnomalyType::OutOfLoopDeadlockContention);
    assert!(report.deadlock_loop.is_some());
    let majors = report.major_root_cause_flows(0.2);
    for c in &sc.truth.culprit_flows {
        assert!(majors.contains(c), "culprit {c} missing from {majors:?}");
    }
}

#[test]
fn normal_contention_degenerate_case() {
    let (sc, out) = run(ScenarioKind::NormalContention);
    assert_eq!(
        out.verdict,
        Some(Verdict::Correct),
        "report: {:#?}",
        out.report
    );
    let report = out.report.unwrap();
    assert_eq!(report.anomaly, AnomalyType::NormalContention);
    // No PFC spreading: no deadlock loop, no PFC paths.
    assert!(report.deadlock_loop.is_none());
    assert!(report.victim_extents.is_empty());
    let majors = report.major_root_cause_flows(0.2);
    for c in &sc.truth.culprit_flows {
        assert!(majors.contains(c), "culprit {c} missing from {majors:?}");
    }
}
