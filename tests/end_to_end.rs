//! End-to-end integration: simulated anomalies -> detection agent ->
//! polling packets -> in-network causality tracing -> controller
//! collection -> provenance graph -> diagnosis report.
//!
//! These tests replay the paper's Fig. 1 case studies on the event-driven
//! substrate and check that the full Hawkeye pipeline reaches the right
//! verdicts.

use hawkeye::core::{
    analyze_detection, AnalyzerConfig, AnomalyType, HawkeyeConfig, HawkeyeHook, RootCause,
};
use hawkeye::sim::{
    chain, AgentConfig, FlowKey, Nanos, PfcInjectorConfig, SimConfig, Simulator, EVAL_BANDWIDTH,
    EVAL_DELAY,
};
use hawkeye::telemetry::{EpochConfig, TelemetryConfig};

/// ~131 us epochs (2^17 ns), the precision-friendly end of the paper's
/// Fig. 7 sweep.
fn epoch() -> EpochConfig {
    EpochConfig::for_epoch_len(Nanos::from_micros(100), 2)
}

fn hawkeye_cfg() -> HawkeyeConfig {
    HawkeyeConfig {
        telemetry: TelemetryConfig {
            epochs: epoch(),
            ..Default::default()
        },
        ..Default::default()
    }
}

fn agent() -> AgentConfig {
    AgentConfig {
        rtt_threshold_factor: 3.0,
        base_rtt: Nanos::from_micros(15),
        check_interval: Nanos::from_micros(50),
        dedup_interval: Nanos::from_millis(2),
        periodic_probe: None,
        retry: None,
    }
}

fn analyzer_cfg() -> AnalyzerConfig {
    AnalyzerConfig::for_epoch_len(epoch().epoch_len())
}

/// Fig. 1(a): PFC backpressure by incast micro-bursts. Bursts from sw2's
/// own hosts into h10 congest sw2's host egress; light "mice" through-flows
/// from sw0 toward h10 back traffic up hop by hop (sw2 pauses sw1, sw1
/// pauses sw0); the victim (h0 -> h14) crosses both inter-switch links but
/// never the congested h10 egress.
#[test]
fn incast_backpressure_diagnosed_end_to_end() {
    let topo = chain(3, 5, EVAL_BANDWIDTH, EVAL_DELAY);
    let hosts: Vec<_> = topo.hosts().collect();
    let sws: Vec<_> = topo.switches().collect();
    let hook = HawkeyeHook::new(&topo, hawkeye_cfg());
    let mut sim = Simulator::new(topo, SimConfig::default(), hook);
    sim.enable_agents(agent());

    // Victim: h0 (sw0) -> h14 (sw2).
    let victim = FlowKey::roce(hosts[0], hosts[14], 100);
    sim.add_flow(victim, 20_000_000, Nanos::ZERO);
    // Light through-traffic: mice from h1 (sw0) into the incast target.
    // These spread the PFC upstream without dominating the congested queue.
    let mice: Vec<FlowKey> = (0..40)
        .map(|i| FlowKey::roce(hosts[1], hosts[10], 300 + i as u16))
        .collect();
    for (i, m) in mice.iter().enumerate() {
        sim.add_flow(*m, 64_000, Nanos::from_micros(700 + 15 * i as u64));
    }
    // Synchronized bursts from sw2's own hosts into h10 (the Fig. 1(a)
    // pattern: culprits attach directly to the last switch).
    let bursts: Vec<FlowKey> = (0..3)
        .map(|i| FlowKey::roce(hosts[11 + i], hosts[10], 200 + i as u16))
        .collect();
    for b in &bursts {
        sim.add_flow(*b, 2_000_000, Nanos::from_micros(800));
    }

    sim.run_until(Nanos::from_millis(3));

    let dets = sim.detections();
    let det = dets
        .iter()
        .find(|d| d.key == victim)
        .expect("the victim flow must trip the RTT threshold");

    let coll = &sim.hook.collector;
    assert!(
        coll.switch_count() >= 3,
        "victim path + PFC path switches collected, got {}",
        coll.switch_count()
    );

    let (report, graph, _agg) =
        analyze_detection(det, &coll.snapshots(), sim.topo(), &analyzer_cfg());

    assert_eq!(report.anomaly, AnomalyType::MicroBurstIncast);
    // The major contributors at sw2's host-facing egress are exactly the
    // three bursts.
    let majors = report.major_root_cause_flows(0.1);
    assert_eq!(majors, {
        let mut b = bursts.clone();
        b.sort_unstable();
        b
    });
    assert!(
        !report.root_cause_flows().contains(&victim),
        "the victim must not be blamed"
    );
    // The PFC path runs from the victim's first pausing port (sw0) to the
    // initial congestion point on sw2.
    assert!(!report.pfc_paths.is_empty());
    let path = &report.pfc_paths[0];
    assert_eq!(path.first().unwrap().node, sws[0]);
    assert_eq!(path.last().unwrap().node, sws[2]);
    assert_eq!(path.len(), 3);
    assert!(report.deadlock_loop.is_none());
    // Victim extents recorded at sw0 and sw1.
    assert!(report
        .victim_extents
        .iter()
        .any(|(p, w)| p.node == sws[0] && *w > 0.0));
    assert!(report
        .victim_extents
        .iter()
        .any(|(p, w)| p.node == sws[1] && *w > 0.0));
    // Mice are flagged as congestion-spreading flows (paused at 2+ ports
    // of the PFC path).
    assert!(
        report.spreading_flows.iter().any(|f| mice.contains(f)),
        "spreading flows: {:?}",
        report.spreading_flows
    );
    // The bursts are classified as burst flows.
    for b in &bursts {
        assert!(report.burst_flows.contains(b), "{b} not burst-classified");
    }
    assert!(graph.ports.len() >= 3);
}

/// Fig. 1(b): PFC storm by host injection. h8's NIC floods PAUSE frames;
/// flows toward sw2 stall with zero flow contention anywhere.
#[test]
fn pfc_storm_diagnosed_end_to_end() {
    let topo = chain(3, 4, EVAL_BANDWIDTH, EVAL_DELAY);
    let hosts: Vec<_> = topo.hosts().collect();
    let hook = HawkeyeHook::new(&topo, hawkeye_cfg());
    let mut sim = Simulator::new(topo, SimConfig::default(), hook);
    sim.enable_agents(agent());

    let injector = hosts[8];
    sim.set_pfc_injector(
        injector,
        PfcInjectorConfig {
            start: Nanos::from_micros(50),
            stop: Nanos::from_millis(3),
            period: Nanos::from_micros(100),
        },
    );
    // Victim: h0 (sw0) -> h8 (sw2), right into the storm.
    let victim = FlowKey::roce(hosts[0], hosts[8], 100);
    sim.add_flow(victim, 2_000_000, Nanos::ZERO);

    sim.run_until(Nanos::from_millis(2));

    let dets = sim.detections();
    let det = dets
        .iter()
        .find(|d| d.key == victim)
        .expect("storm victim detected");

    let (report, _g, _a) = analyze_detection(
        det,
        &sim.hook.collector.snapshots(),
        sim.topo(),
        &analyzer_cfg(),
    );

    assert_eq!(report.anomaly, AnomalyType::PfcStorm);
    let peers = report.injection_peers();
    assert_eq!(peers, vec![injector], "the injecting host is named");
    assert!(report.root_cause_flows().is_empty());
    assert!(matches!(
        report.root_causes[0],
        RootCause::HostPfcInjection { .. }
    ));
}
