//! Hawkeye is topology-agnostic: the full pipeline on a leaf-spine fabric
//! (the paper evaluates on a fat-tree; nothing in the design depends on it).

use hawkeye::core::{
    analyze_victim_window, AnalyzerConfig, AnomalyType, HawkeyeConfig, HawkeyeHook, Window,
};
use hawkeye::sim::{
    leaf_spine, AgentConfig, FlowKey, Nanos, SimConfig, Simulator, EVAL_BANDWIDTH, EVAL_DELAY,
};
use hawkeye::telemetry::{EpochConfig, TelemetryConfig};

#[test]
fn incast_backpressure_on_leaf_spine() {
    let topo = leaf_spine(4, 2, 4, EVAL_BANDWIDTH, EVAL_DELAY);
    let hosts: Vec<_> = topo.hosts().collect();
    let epoch = EpochConfig::for_epoch_len(Nanos::from_micros(100), 2);
    let hook = HawkeyeHook::new(
        &topo,
        HawkeyeConfig {
            telemetry: TelemetryConfig {
                epochs: epoch,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut sim = Simulator::new(topo, SimConfig::default(), hook);
    sim.enable_agents(AgentConfig {
        rtt_threshold_factor: 2.5,
        base_rtt: Nanos::from_micros(15),
        check_interval: Nanos::from_micros(50),
        dedup_interval: Nanos::from_micros(400),
        periodic_probe: None,
        retry: None,
    });

    // Victim: leaf0 host -> leaf1 host (never touches the incast target).
    let victim = FlowKey::roce(hosts[0], hosts[7], 100);
    sim.add_flow(victim, 20_000_000, Nanos::ZERO);
    // Mice through the same spine path into the incast target h4 (leaf1).
    for i in 0..40u64 {
        sim.add_flow(
            FlowKey::roce(hosts[1], hosts[4], 300 + i as u16),
            64_000,
            Nanos::from_micros(700 + 15 * i),
        );
    }
    // Local bursts into h4 from leaf1's other hosts.
    for i in 0..3u16 {
        sim.add_flow(
            FlowKey::roce(hosts[5 + i as usize], hosts[4], 200 + i),
            2_000_000,
            Nanos::from_micros(800),
        );
    }
    sim.run_until(Nanos::from_millis(3));

    let dets = sim.detections();
    let vdets: Vec<_> = dets
        .iter()
        .filter(|d| d.key == victim && d.at >= Nanos::from_micros(800))
        .collect();
    let first = vdets.first().expect("victim detected on leaf-spine");
    let last = vdets.last().unwrap();
    let analyzer = AnalyzerConfig::for_epoch_len(epoch.epoch_len());
    let window = Window {
        from: first.at.saturating_sub(Nanos(
            epoch.epoch_len().as_nanos() * analyzer.lookback_epochs,
        )),
        to: last.at + epoch.epoch_len(),
    };
    let (report, _, _) = analyze_victim_window(
        &victim,
        window,
        &sim.hook.collector.snapshots(),
        sim.topo(),
        &analyzer,
    );
    assert_eq!(report.anomaly, AnomalyType::MicroBurstIncast, "{report:#?}");
    let majors = report.major_root_cause_flows(0.2);
    for i in 0..3u16 {
        let b = FlowKey::roce(hosts[5 + i as usize], hosts[4], 200 + i);
        assert!(majors.contains(&b), "burst {b} missing from {majors:?}");
    }
    assert!(!majors.contains(&victim));
}
