//! Cross-method integration: the comparison baselines behave as their
//! designs dictate on the same traces (Figures 8/9/10/11 in miniature).

use hawkeye::baselines::Method;
use hawkeye::core::AnomalyType;
use hawkeye::eval::{optimal_run_config, run_method, ScoreConfig, Verdict};
use hawkeye::workloads::{build_scenario, ScenarioKind, ScenarioParams};

fn scenario(kind: ScenarioKind) -> hawkeye::workloads::Scenario {
    build_scenario(
        kind,
        ScenarioParams {
            load: 0.0,
            ..Default::default()
        },
    )
}

#[test]
fn hawkeye_and_full_polling_agree_on_backpressure() {
    let sc = scenario(ScenarioKind::MicroBurstIncast);
    let h = run_method(
        &sc,
        &optimal_run_config(1),
        Method::Hawkeye,
        &ScoreConfig::default(),
    );
    let f = run_method(
        &sc,
        &optimal_run_config(1),
        Method::FullPolling,
        &ScoreConfig::default(),
    );
    assert_eq!(h.verdict, Some(Verdict::Correct));
    assert_eq!(f.verdict, Some(Verdict::Correct));
    // Full polling touches the whole network; Hawkeye only the causal set.
    assert_eq!(f.collected_switches.len(), 20);
    assert!(h.collected_switches.len() < f.collected_switches.len());
    assert_eq!(h.causal_covered, h.causal_total, "100% causal coverage");
    assert!(h.processing_bytes < f.processing_bytes);
}

#[test]
fn victim_only_fails_deadlocks_but_matches_on_storms() {
    // Deadlock: the loop is off the victim path; victim-only collection
    // cannot see it (the paper's key Fig. 8 result).
    let sc = scenario(ScenarioKind::InLoopDeadlock);
    let v = run_method(
        &sc,
        &optimal_run_config(1),
        Method::VictimOnly,
        &ScoreConfig::default(),
    );
    assert_ne!(v.verdict, Some(Verdict::Correct));
    if let Some(r) = &v.report {
        assert_ne!(r.anomaly, AnomalyType::InLoopDeadlock);
    }
    assert!(v.causal_covered < v.causal_total);

    // Storm into the victim's own destination: the PFC path is the victim
    // path, so victim-only does as well as Hawkeye.
    let sc = scenario(ScenarioKind::PfcStorm);
    let v = run_method(
        &sc,
        &optimal_run_config(1),
        Method::VictimOnly,
        &ScoreConfig::default(),
    );
    assert_eq!(v.verdict, Some(Verdict::Correct), "{:#?}", v.report);
}

#[test]
fn pfc_blind_baselines_miss_pfc_anomalies() {
    for kind in [ScenarioKind::MicroBurstIncast, ScenarioKind::PfcStorm] {
        let sc = scenario(kind);
        for m in [Method::SpiderMon, Method::NetSight] {
            let o = run_method(&sc, &optimal_run_config(1), m, &ScoreConfig::default());
            assert_ne!(
                o.verdict,
                Some(Verdict::Correct),
                "{} must not diagnose {:?}",
                m.name(),
                kind
            );
            if let Some(r) = &o.report {
                // Without paused counters, no PFC anomaly type is reachable.
                assert!(
                    matches!(
                        r.anomaly,
                        AnomalyType::NormalContention | AnomalyType::NoAnomaly
                    ),
                    "{}: {:?}",
                    m.name(),
                    r.anomaly
                );
            }
        }
    }
}

#[test]
fn pfc_blind_baselines_handle_normal_contention() {
    let sc = scenario(ScenarioKind::NormalContention);
    let o = run_method(
        &sc,
        &optimal_run_config(1),
        Method::NetSight,
        &ScoreConfig::default(),
    );
    assert_eq!(o.verdict, Some(Verdict::Correct), "{:#?}", o.report);
}

#[test]
fn granularity_ablations_degrade_as_described() {
    // Port-only: PFC path traceable, flow roots missing -> wrong on
    // contention-rooted anomalies.
    let sc = scenario(ScenarioKind::MicroBurstIncast);
    let p = run_method(
        &sc,
        &optimal_run_config(1),
        Method::PortOnly,
        &ScoreConfig::default(),
    );
    assert_ne!(p.verdict, Some(Verdict::Correct));

    // Flow-only: no port causality -> deadlock loop invisible.
    let sc = scenario(ScenarioKind::InLoopDeadlock);
    let fl = run_method(
        &sc,
        &optimal_run_config(1),
        Method::FlowOnly,
        &ScoreConfig::default(),
    );
    if let Some(r) = &fl.report {
        assert!(r.deadlock_loop.is_none(), "flow-only cannot see the loop");
    }
    assert_ne!(fl.verdict, Some(Verdict::Correct));
}

#[test]
fn overhead_ordering_matches_fig9() {
    let sc = scenario(ScenarioKind::MicroBurstIncast);
    let h = run_method(
        &sc,
        &optimal_run_config(1),
        Method::Hawkeye,
        &ScoreConfig::default(),
    );
    let s = run_method(
        &sc,
        &optimal_run_config(1),
        Method::SpiderMon,
        &ScoreConfig::default(),
    );
    let n = run_method(
        &sc,
        &optimal_run_config(1),
        Method::NetSight,
        &ScoreConfig::default(),
    );
    // Bandwidth: NetSight (postcards) >> SpiderMon (per-packet header)
    // >> Hawkeye (a handful of polling packets).
    assert!(n.bandwidth_bytes > s.bandwidth_bytes * 5);
    assert!(s.bandwidth_bytes > h.bandwidth_bytes * 5);
    // Processing: NetSight's per-packet records dwarf everyone.
    assert!(n.processing_bytes > h.processing_bytes * 100);
}
