//! Observability-layer integration: the `ObservedHook` decorator must be a
//! faithful passthrough (same simulation, same probe handling, same
//! diagnosis as the bare hook), and the traces it produces must be
//! deterministic — byte-identical across same-seed runs — because events
//! carry simulation time only.

use hawkeye::core::{analyze_victim_window, AnalyzerConfig, HawkeyeConfig, HawkeyeHook, Window};
use hawkeye::eval::{optimal_run_config, run_hawkeye, run_hawkeye_obs, ScoreConfig};
use hawkeye::obs::{emit, kind, ObsConfig};
use hawkeye::sim::{Detection, Nanos, ObservedHook, RunSummary};
use hawkeye::telemetry::{EpochConfig, TelemetryConfig, TelemetrySnapshot};
use hawkeye::workloads::{build_scenario, Scenario, ScenarioKind, ScenarioParams};

fn scenario() -> Scenario {
    build_scenario(
        ScenarioKind::MicroBurstIncast,
        ScenarioParams {
            seed: 7,
            load: 0.1,
            ..Default::default()
        },
    )
}

fn hcfg() -> HawkeyeConfig {
    HawkeyeConfig {
        telemetry: TelemetryConfig {
            epochs: EpochConfig::for_epoch_len(Nanos::from_micros(100), 2),
            ..Default::default()
        },
        ..Default::default()
    }
}

struct Run {
    detections: Vec<Detection>,
    summary: RunSummary,
    hook_stats: String,
    snapshots: Vec<TelemetrySnapshot>,
}

fn run_bare(sc: &Scenario) -> Run {
    let hook = HawkeyeHook::new(&sc.topo, hcfg());
    let mut sim = sc.instantiate_seeded(1, Scenario::agent(2.0), hook);
    sim.run_until(sc.params.duration);
    Run {
        detections: sim.detections(),
        summary: RunSummary::of(&sim),
        hook_stats: format!("{:?}", sim.hook.stats),
        snapshots: sim.hook.collector.snapshots(),
    }
}

fn run_observed(sc: &Scenario, cfg: ObsConfig) -> Run {
    let hook = ObservedHook::new(HawkeyeHook::new(&sc.topo, hcfg()), cfg);
    let mut sim = sc.instantiate_seeded(1, Scenario::agent(2.0), hook);
    sim.run_until(sc.params.duration);
    Run {
        detections: sim.detections(),
        summary: RunSummary::of(&sim),
        hook_stats: format!("{:?}", sim.hook.inner().stats),
        snapshots: sim.hook.inner().collector.snapshots(),
    }
}

fn diagnose(sc: &Scenario, run: &Run) -> Option<hawkeye::core::DiagnosisReport> {
    let victim: Vec<_> = run
        .detections
        .iter()
        .filter(|d| d.key == sc.truth.victim && d.at >= sc.truth.anomaly_at)
        .collect();
    let (first, last) = (victim.first()?.at, victim.last()?.at);
    let analyzer = AnalyzerConfig::for_epoch_len(Nanos::from_micros(100));
    let window = Window {
        from: first.saturating_sub(Nanos(
            analyzer.epoch_len.as_nanos() * analyzer.lookback_epochs,
        )),
        to: last + analyzer.epoch_len,
    };
    Some(
        analyze_victim_window(
            &sc.truth.victim,
            window,
            &run.snapshots,
            &sc.topo,
            &analyzer,
        )
        .0,
    )
}

/// The decorator must not change a single observable output of the run:
/// same detections, same switch/host counters, same in-switch hook
/// statistics (i.e. identical `ProbeDecision`s along the way), and the
/// telemetry it collects must diagnose to the identical report.
#[test]
fn observed_hook_is_faithful_passthrough() {
    let sc = scenario();
    let bare = run_bare(&sc);
    for cfg in [ObsConfig::default(), ObsConfig::off()] {
        let obs = run_observed(&sc, cfg);
        assert_eq!(bare.detections, obs.detections);
        assert_eq!(bare.summary, obs.summary);
        assert_eq!(bare.hook_stats, obs.hook_stats);
        let (rb, ro) = (diagnose(&sc, &bare), diagnose(&sc, &obs));
        assert!(rb.is_some(), "victim must be detected in this scenario");
        assert_eq!(rb, ro);
    }
}

/// Same seed, two full observed runs: the emitted JSONL (and the Chrome
/// trace derived from the same records) must match byte for byte. Stage
/// wall-clock timings live only in the `StageProfile`, never in the trace.
#[test]
fn same_seed_traces_are_byte_identical() {
    let sc = scenario();
    let cfg = ObsConfig {
        enabled: true,
        capacity: 1 << 20,
        mask: kind::DEFAULT,
    };
    let run = |_: u32| {
        let (_, obs) = run_hawkeye_obs(&sc, &optimal_run_config(1), &ScoreConfig::default(), cfg);
        let recs: Vec<_> = obs.tracer.records().cloned().collect();
        (emit::jsonl(&recs), emit::chrome_trace(&recs))
    };
    let (j1, c1) = run(1);
    let (j2, c2) = run(2);
    assert!(!j1.is_empty());
    assert_eq!(j1, j2, "JSONL trace must be byte-identical across runs");
    assert_eq!(c1, c2, "Chrome trace must be byte-identical across runs");
    // PFC provenance signal must actually be in the trace.
    assert!(j1.contains("PfcPause") && j1.contains("ProbeHop"));
}

/// `RunOutcome`'s counters are read back from the metrics registry; the
/// snapshot carried on the outcome must agree with the fields, and the
/// un-instrumented `run_hawkeye` must produce the same numbers.
#[test]
fn run_outcome_counters_come_from_the_registry() {
    let sc = scenario();
    let cfg = optimal_run_config(1);
    let score = ScoreConfig::default();
    let (out, obs) = run_hawkeye_obs(&sc, &cfg, &score, ObsConfig::default());
    let snap = &out.metrics;
    assert_eq!(snap.counter("polling_packets"), Some(out.polling_packets));
    assert_eq!(
        snap.counter("collected_bytes"),
        Some(out.collected_bytes as u64)
    );
    assert_eq!(snap.counter("detections"), Some(out.all_detections as u64));
    assert_eq!(snap.counter_total("switch_data_pkts"), out.data_packets);
    // The diagnosis ran under span timing: all three stages profiled.
    let stages: Vec<_> = obs.profile.spans().iter().map(|s| s.stage).collect();
    assert!(stages.len() >= 3, "expected stage spans, got {stages:?}");

    let plain = run_hawkeye(&sc, &cfg, &score);
    assert_eq!(plain.polling_packets, out.polling_packets);
    assert_eq!(plain.collected_bytes, out.collected_bytes);
    assert_eq!(plain.data_packets, out.data_packets);
    assert_eq!(plain.report, out.report);
}
