//! Polling-packet protocol invariants under live anomalies: bounded
//! amplification, dedup-terminated circulation in deadlock loops, and
//! collection dedup.

use hawkeye::core::{HawkeyeConfig, HawkeyeHook};
use hawkeye::sim::Nanos;
use hawkeye::telemetry::{EpochConfig, TelemetryConfig};
use hawkeye::workloads::{build_scenario, Scenario, ScenarioKind, ScenarioParams};

fn run(kind: ScenarioKind) -> hawkeye::sim::Simulator<HawkeyeHook> {
    let sc = build_scenario(
        kind,
        ScenarioParams {
            load: 0.1,
            ..Default::default()
        },
    );
    let hook = HawkeyeHook::new(
        &sc.topo,
        HawkeyeConfig {
            telemetry: TelemetryConfig {
                epochs: EpochConfig::for_epoch_len(Nanos::from_micros(100), 2),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut agent = Scenario::agent(2.0);
    agent.dedup_interval = Nanos::from_micros(400);
    let mut sim = sc.instantiate_seeded(1, agent, hook);
    sim.run_until(sc.params.duration);
    sim
}

#[test]
fn probe_amplification_is_bounded() {
    for kind in [ScenarioKind::MicroBurstIncast, ScenarioKind::PfcStorm] {
        let sim = run(kind);
        let stats = sim.hook.stats;
        assert!(stats.probes_received > 0);
        // A switch only re-emits a probe it processed; every processed
        // probe was received; host injections are counted in detections.
        assert!(
            stats.probes_emitted <= stats.probes_received,
            "{kind:?}: emitted {} > received {}",
            stats.probes_emitted,
            stats.probes_received
        );
        // Each processed probe mirrors at most once.
        assert!(stats.cpu_mirrors <= stats.probes_received);
        // Amplification stays below one probe per switch per detection.
        let detections = sim.detections().len() as u64;
        let switches = sim.topo().switches().count() as u64;
        assert!(
            stats.probes_received <= detections * switches,
            "{kind:?}: received {} vs bound {}",
            stats.probes_received,
            detections * switches
        );
    }
}

#[test]
fn deadlock_loop_circulation_is_deduped() {
    let sim = run(ScenarioKind::InLoopDeadlock);
    let stats = sim.hook.stats;
    // The CBD loop would circulate probes forever without the per-victim
    // dedup (§3.4); the dedup must actually engage...
    assert!(stats.probes_deduped > 0, "dedup never engaged");
    // ...and keep the total probe traffic far below the runaway regime.
    let detections = sim.detections().len() as u64;
    let switches = sim.topo().switches().count() as u64;
    assert!(stats.probes_received <= detections * switches);
}

#[test]
fn collection_dedup_limits_snapshots() {
    let sim = run(ScenarioKind::MicroBurstIncast);
    // Per-switch collections are spaced by the dedup interval (100 us):
    // a 3 ms trace admits at most 30 collections per switch.
    let mut per_switch = std::collections::HashMap::new();
    for e in &sim.hook.collector.events {
        *per_switch.entry(e.switch).or_insert(0u32) += 1;
    }
    for (sw, n) in per_switch {
        assert!(n <= 30, "switch {sw} collected {n} times");
    }
    // Offers are a superset of collections.
    assert!(sim.hook.collector.offers.len() >= sim.hook.collector.events.len());
}
