//! Cross-validation of the §3.6 PFC-awareness reconstruction: Hawkeye's
//! port-status registers (maintained purely from PFC frames passed into
//! the pipeline) must agree with the simulator's ground-truth pause state
//! at every single enqueue — plus end-to-end determinism of the whole
//! pipeline.

use hawkeye::core::{HawkeyeConfig, HawkeyeHook};
use hawkeye::sim::{
    EnqueueRecord, Nanos, NodeId, PfcEvent, Probe, ProbeDecision, SwitchHook, SwitchView,
};
use hawkeye::workloads::{build_scenario, Scenario, ScenarioKind, ScenarioParams};

/// Wraps the real Hawkeye hook and asserts register fidelity on every
/// enqueue.
struct FidelityHook {
    inner: HawkeyeHook,
    checked: u64,
    paused_seen: u64,
}

impl SwitchHook for FidelityHook {
    fn on_data_enqueue(&mut self, rec: &EnqueueRecord) {
        // The register state BEFORE this enqueue must match ground truth.
        let reg = self
            .inner
            .telemetry(rec.switch)
            .expect("instrumented")
            .status()
            .is_paused(rec.out_port, rec.timestamp);
        assert_eq!(
            reg, rec.egress_paused,
            "register mismatch at {}@{}: reg={} truth={}",
            rec.switch, rec.out_port, reg, rec.egress_paused
        );
        self.checked += 1;
        self.paused_seen += rec.egress_paused as u64;
        self.inner.on_data_enqueue(rec);
    }

    fn on_pfc_frame(&mut self, ev: &PfcEvent) {
        self.inner.on_pfc_frame(ev);
    }

    fn on_probe(
        &mut self,
        switch: NodeId,
        in_port: u8,
        probe: Probe,
        view: &SwitchView<'_>,
        now: Nanos,
    ) -> ProbeDecision {
        self.inner.on_probe(switch, in_port, probe, view, now)
    }
}

#[test]
fn pfc_status_registers_match_ground_truth() {
    // Storm + incast exercise pauses from host injection and from
    // ingress-threshold crossings, with refreshes and resumes.
    for kind in [ScenarioKind::PfcStorm, ScenarioKind::MicroBurstIncast] {
        let sc = build_scenario(
            kind,
            ScenarioParams {
                load: 0.2,
                ..Default::default()
            },
        );
        let hook = FidelityHook {
            inner: HawkeyeHook::new(&sc.topo, HawkeyeConfig::default()),
            checked: 0,
            paused_seen: 0,
        };
        let mut sim = sc.instantiate_seeded(1, Scenario::agent(2.0), hook);
        sim.run_until(sc.params.duration);
        assert!(sim.hook.checked > 10_000, "checked {}", sim.hook.checked);
        assert!(
            sim.hook.paused_seen > 0,
            "{kind:?} must exercise paused enqueues"
        );
    }
}

#[test]
fn full_pipeline_is_deterministic() {
    use hawkeye::baselines::Method;
    use hawkeye::eval::{optimal_run_config, run_method, ScoreConfig};
    let run = || {
        let sc = build_scenario(
            ScenarioKind::MicroBurstIncast,
            ScenarioParams {
                load: 0.2,
                ..Default::default()
            },
        );
        let o = run_method(
            &sc,
            &optimal_run_config(1),
            Method::Hawkeye,
            &ScoreConfig::default(),
        );
        (
            o.detection.map(|d| d.at),
            format!("{:?}", o.verdict),
            o.report.map(|r| serde_json::to_string(&r).unwrap()),
            o.collected_switches,
            o.processing_bytes,
            o.bandwidth_bytes,
        )
    };
    assert_eq!(run(), run());
}
