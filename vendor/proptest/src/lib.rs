//! Vendored minimal `proptest` stand-in.
//!
//! Supports the subset this workspace's property tests use:
//!
//! - `proptest! { #![proptest_config(ProptestConfig::with_cases(N))] ... }`
//!   with `#[test] fn name(x in strategy, ...) { ... }` items
//! - strategies: primitive `Range`s, tuples of strategies,
//!   `proptest::collection::vec(strategy, len_range)`, `.prop_map(f)`
//! - assertions: `prop_assert!`, `prop_assert_eq!`, early `return Ok(())`
//!
//! No shrinking: a failing case reports its iteration index and panics.
//! Inputs are generated from a fixed per-test seed, so failures reproduce
//! by re-running the test.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;
use std::ops::Range;

/// Test-case failure (carried by `prop_assert!` early returns).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Constant strategy (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Vec of values from `element`, with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Derive a stable per-test seed from the test's name.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Fresh generator for case `i` of a test.
pub fn case_rng(test_seed: u64, case: u32) -> StdRng {
    let mut mix = StdRng::seed_from_u64(test_seed ^ ((case as u64) << 32 | 0xA5A5));
    StdRng::seed_from_u64(mix.next_u64())
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                a, b
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                a, b
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let seed = $crate::seed_for(stringify!($name));
                for case in 0..cfg.cases {
                    let mut rng = $crate::case_rng(seed, case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let debug_inputs = || {
                        let mut s = String::new();
                        $(s.push_str(&format!(
                            "  {} = {:?}\n", stringify!($arg), &$arg
                        ));)*
                        s
                    };
                    let inputs = debug_inputs();
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = result {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs:\n{}",
                            case + 1, cfg.cases, e, inputs
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            x in 3u32..10,
            v in crate::collection::vec((0u8..4, 10u64..20), 1..5),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 5);
            for (a, b) in &v {
                prop_assert!(*a < 4);
                prop_assert!((10..20).contains(b), "b = {}", b);
            }
        }

        #[test]
        fn prop_map_applies(w in (0usize..5).prop_map(|n| n * 2)) {
            prop_assert!(w % 2 == 0 && w < 10);
            if w == 0 { return Ok(()); }
            prop_assert_ne!(w, 1);
        }
    }
}
