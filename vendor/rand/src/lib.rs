//! Vendored minimal `rand` stand-in.
//!
//! Offline builds cannot fetch the real `rand`; this crate provides the
//! small surface the workspace uses — `StdRng::seed_from_u64`,
//! `Rng::gen_range` over integer/float ranges, `gen_bool` — backed by
//! xoshiro256++ seeded through SplitMix64. Deterministic across platforms
//! (a hard requirement for reproducible experiments); the exact stream
//! differs from upstream `rand`, which only shifts which random workloads
//! a given seed denotes.

use std::ops::Range;

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, implemented for `Range<primitive>`. The sampled type
/// is a trait parameter (as in upstream rand) so call-site usage like
/// `v[rng.gen_range(0..n)]` infers the integer type from context.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, irrelevant for workload generation.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((self.start as u128 + hi as u128) as u64) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        // 53 uniform mantissa bits in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let r = (self.start as f64)..(self.end as f64);
        r.sample_from(rng) as f32
    }
}

/// User-facing convenience methods, blanket-implemented for every RngCore.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (0.0..1.0).sample_from(self) < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the stand-in for rand's
    /// `StdRng`; upstream uses ChaCha12 — any fixed stream works here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let equal = (0..100)
            .all(|_| StdRng::seed_from_u64(7).gen_range(0u64..100) == c.gen_range(0u64..100));
        assert!(!equal);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(5usize..17);
            assert!((5..17).contains(&x));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn f64_unit_interval_is_uniformish() {
        let mut r = StdRng::seed_from_u64(11);
        let mean: f64 = (0..100_000).map(|_| r.gen_range(0.0f64..1.0)).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
