//! Vendored, dependency-free stand-in for the `serde` facade.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real `serde` cannot be downloaded. This crate re-implements the narrow
//! surface the workspace actually uses — `#[derive(Serialize, Deserialize)]`
//! on non-generic structs/enums plus JSON via the sibling `serde_json`
//! stand-in — over an owned [`Value`] tree.
//!
//! Representation choices mirror real serde's JSON mapping so that derived
//! round-trips and any externally produced JSON stay compatible:
//! struct → object, newtype struct → inner value, tuple → array,
//! unit enum variant → string, struct/tuple variant → `{"Variant": ...}`,
//! `Option` → `null` / value, map → object.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integer (covers all iN and uN up to u63).
    Int(i64),
    /// Unsigned integers above i64::MAX.
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Field order is preserved (serde_json with `preserve_order` feel);
    /// determinism of output matters more than lookup speed here.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Helper for derived code: fetch a required object field.
pub fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, Error> {
    v.get(name)
        .ok_or_else(|| Error(format!("missing field `{name}`")))
}

fn expected(what: &'static str, got: &Value) -> Error {
    Error(format!("expected {what}, found {}", got.kind()))
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if v >= i64::MIN as i128 && v <= i64::MAX as i128 {
                    Value::Int(v as i64)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error(format!("integer {i} out of range"))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error(format!("integer {u} out of range"))),
                    // Tolerate floats that are exactly integral (JSON has one
                    // number type).
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(expected("integer", other)),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error(format!("expected single char, found {s:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| expected("array", v))?;
                let want = [$($n),+].len();
                if a.len() != want {
                    return Err(Error(format!(
                        "expected array of {want}, found {}", a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )+};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

fn map_to_value<'a, K, V, I>(iter: I) -> Value
where
    K: fmt::Display + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    Value::Object(iter.map(|(k, v)| (k.to_string(), v.to_value())).collect())
}

impl<K: fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: fmt::Display + Ord, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        map_to_value(entries.into_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-5i32).to_value()).unwrap(), -5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            Option::<u8>::from_value(&None::<u8>.to_value()).unwrap(),
            None
        );
        let v: Vec<(u8, u16)> = vec![(1, 2), (3, 4)];
        assert_eq!(Vec::<(u8, u16)>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn u64_above_i64_max_survives() {
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }
}
