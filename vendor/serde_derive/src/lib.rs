//! Vendored minimal `#[derive(Serialize, Deserialize)]` macros.
//!
//! Parses the item with a hand-rolled `proc_macro` token walker (the real
//! derive needs `syn`/`quote`, which are unavailable offline) and emits
//! impls of the sibling vendored `serde::{Serialize, Deserialize}` traits.
//!
//! Supported shapes — exactly what this workspace derives on:
//! - non-generic structs with named fields
//! - tuple structs (newtype structs serialize transparently, like serde)
//! - non-generic enums with unit, tuple, and struct variants
//!
//! `#[serde(...)]` attributes are not supported and will simply be ignored
//! by the parser (none exist in this workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with N fields.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum variants.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Skip any number of `#[...]` attribute groups starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Count top-level comma-separated, non-empty groups in a token sequence.
fn count_top_level(tokens: &[TokenTree]) -> usize {
    let mut depth = 0usize;
    let mut fields = 0usize;
    let mut saw_tokens = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if depth == 0 && p.as_char() == ',' => {
                if saw_tokens {
                    fields += 1;
                }
                saw_tokens = false;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                saw_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth = depth.saturating_sub(1);
                saw_tokens = true;
            }
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        fields += 1;
    }
    fields
}

/// Parse `field: Type, ...` inside a brace group into field names.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1;
        // Skip `:` then the type up to a top-level comma (angle brackets
        // nest; every other delimiter arrives pre-grouped).
        let mut depth = 0usize;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_enum_variants(group: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                VariantShape::Tuple(count_top_level(&inner))
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip an optional discriminant and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde derive does not support generic type `{name}`");
        }
    }
    let shape = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::Tuple(count_top_level(&inner))
            }
            _ => Shape::Unit,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_enum_variants(g.stream()))
            }
            other => panic!("derive: expected enum body, found {other:?}"),
        },
        other => panic!("derive supports struct/enum only, found `{other}`"),
    };
    Item { name, shape }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "obj.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "let mut obj: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}::serde::Value::Object(obj)"
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {inner})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "obj.push((\"{f}\".to_string(), ::serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             let mut obj: Vec<(String, ::serde::Value)> = Vec::new();\n\
                             {pushes}\
                             ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(obj))])\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("derived Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(::serde::field(v, \"{f}\")?)?,\n"
                ));
            }
            format!("Ok({name} {{\n{inits}}})")
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Shape::Tuple(n) => {
            let mut inits = String::new();
            for i in 0..*n {
                inits.push_str(&format!("::serde::Deserialize::from_value(&a[{i}])?,\n"));
            }
            format!(
                "let a = v.as_array().ok_or_else(|| ::serde::Error::custom(\
                 \"expected array for {name}\"))?;\n\
                 if a.len() != {n} {{\n\
                 return Err(::serde::Error::custom(format!(\
                 \"expected {n} elements for {name}, found {{}}\", a.len())));\n}}\n\
                 Ok({name}({inits}))"
            )
        }
        Shape::Unit => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"));
                    }
                    VariantShape::Tuple(n) => {
                        let build = if *n == 1 {
                            format!("{name}::{vn}(::serde::Deserialize::from_value(inner)?)")
                        } else {
                            let mut inits = String::new();
                            for i in 0..*n {
                                inits.push_str(&format!(
                                    "::serde::Deserialize::from_value(&a[{i}])?,\n"
                                ));
                            }
                            format!(
                                "{{ let a = inner.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected array for {name}::{vn}\"))?;\n\
                                 {name}::{vn}({inits}) }}"
                            )
                        };
                        keyed_arms.push_str(&format!("\"{vn}\" => return Ok({build}),\n"));
                    }
                    VariantShape::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 ::serde::field(inner, \"{f}\")?)?,\n"
                            ));
                        }
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => return Ok({name}::{vn} {{\n{inits}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "if let ::serde::Value::Str(s) = v {{\n\
                 match s.as_str() {{\n{unit_arms}\
                 other => return Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n}}\n}}\n\
                 if let Some(obj) = v.as_object() {{\n\
                 if let Some((tag, inner)) = obj.first() {{\n\
                 match tag.as_str() {{\n{keyed_arms}\
                 _ => {{}}\n}}\n}}\n}}\n\
                 Err(::serde::Error::custom(\"no matching variant of {name}\"))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<{name}, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
    .parse()
    .expect("derived Deserialize impl must parse")
}
