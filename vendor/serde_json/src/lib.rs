//! Vendored minimal `serde_json` stand-in: JSON text ⟷ `serde::Value`.
//!
//! Provides the exact call surface the workspace uses — `to_string`,
//! `to_string_pretty`, `to_value`, `from_str` — over the vendored `serde`
//! facade. Output is deterministic: object fields keep declaration order,
//! floats render with a fixed algorithm.

pub use serde::{Error, Value};

/// Serialize a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Convert a value into the JSON value tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserialize a value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    T::from_value(&v)
}

/// Parse JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        // JSON has no Inf/NaN; null matches serde_json's lossy behavior.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e16 {
        // Match serde_json: integral floats keep a ".0" marker.
        out.push_str(&format!("{f:.1}"));
    } else {
        // `{}` on f64 is the shortest representation that round-trips.
        out.push_str(&format!("{f}"));
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(o) => {
            if o.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path over plain UTF-8 runs.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error("eof in escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("eof in \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error(format!("bad number `{text}`: {e}")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Vec<(u32, f64)> = vec![(1, 0.5), (2, 8.0)];
        let js = to_string(&v).unwrap();
        assert_eq!(js, "[[1,0.5],[2,8.0]]");
        let back: Vec<(u32, f64)> = from_str(&js).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_nested_objects_and_escapes() {
        let v = parse(r#"{"a": [1, -2, 3.5], "b": {"c": "x\n\"y\""}, "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str().unwrap(),
            "x\n\"y\""
        );
        assert!(v.get("d").unwrap().is_null());
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = parse(r#"{"a":[1]}"#).unwrap();
        let mut out = String::new();
        super::write_value(&v, &mut out, Some(2), 0);
        assert_eq!(out, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn float_format_round_trips_goodput_scale() {
        let g: f64 = 2.4e9 + 0.123456789;
        let js = to_string(&g).unwrap();
        let back: f64 = from_str(&js).unwrap();
        assert!((back - g).abs() / g < 1e-12);
    }
}
